package m3r

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"m3r/internal/conf"
	"m3r/internal/counters"
	"m3r/internal/dfs"
	"m3r/internal/engine"
	"m3r/internal/sim"
	"m3r/internal/spill"
	"m3r/internal/types"
	"m3r/internal/wio"
	"m3r/internal/wordcount"
)

// swapSpillWrite installs a fault-injecting spill write for one test and
// restores the real one afterwards.
func swapSpillWrite(t *testing.T, fn func(string, spill.EncodedRun) (int64, error)) {
	t.Helper()
	orig := spillWriteRun
	spillWriteRun = fn
	t.Cleanup(func() { spillWriteRun = orig })
}

// newFaultEngine builds an M3R engine over a scratch HDFS with wordcount
// data at /data/t, for driving whole jobs through the spill pipeline.
func newFaultEngine(t *testing.T, places int) *Engine {
	t.Helper()
	backing, err := dfs.NewHDFS(dfs.HDFSOptions{Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Options{Backing: backing, Places: places, Stats: sim.NewStats()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if err := wordcount.Generate(backing, "/data/t", 64<<10, 11); err != nil {
		t.Fatal(err)
	}
	return e
}

// spillingJob returns a WordCount job whose every shuffle run overflows the
// budget (budget 1 byte) and goes through a depth-2 async spill queue.
func spillingJob(out string) *conf.JobConf {
	job := wordcount.NewJob("/data/t", out, 3, true)
	job.SetInt64(conf.KeyM3RShuffleBudget, 1)
	job.SetInt(conf.KeyM3RSpillQueue, 2)
	return job
}

// leftoverSpillDirs counts m3r spill scratch directories still on disk.
func leftoverSpillDirs(t *testing.T) int {
	t.Helper()
	m, err := filepath.Glob(filepath.Join(os.TempDir(), "m3r-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	return len(m)
}

// TestSpillWorkerWriteErrorFailsJob injects a hard io failure into the
// spill worker's second write: the job must fail with that error, every
// spill still queued must be cancelled (no write attempted after the
// failure), and stream/buffer accounting must sit at baseline afterwards.
func TestSpillWorkerWriteErrorFailsJob(t *testing.T) {
	injected := errors.New("injected spill device error")
	var calls, after atomic.Int64
	var failed atomic.Bool
	swapSpillWrite(t, func(path string, enc spill.EncodedRun) (int64, error) {
		if failed.Load() {
			after.Add(1)
		}
		if calls.Add(1) == 2 {
			failed.Store(true)
			return 0, injected
		}
		return spill.WriteEncodedFile(path, enc)
	})

	e := newFaultEngine(t, 1)
	streamBase, bufBase := spill.OpenStreamCount(), encodeBufsOut.Load()
	_, err := e.Submit(spillingJob("/out/wc"))
	if err == nil {
		t.Fatal("job with failing spill worker succeeded")
	}
	if !errors.Is(err, injected) {
		t.Fatalf("job error does not carry the injected failure: %v", err)
	}
	if calls.Load() < 2 {
		t.Fatalf("spill worker attempted %d writes, fault never hit", calls.Load())
	}
	if n := after.Load(); n != 0 {
		t.Errorf("%d spill writes attempted after the failure: queued spills were not cancelled", n)
	}
	if got := spill.OpenStreamCount(); got != streamBase {
		t.Errorf("OpenStreamCount %d, baseline %d: leaked spill streams", got, streamBase)
	}
	if got := encodeBufsOut.Load(); got != bufBase {
		t.Errorf("encode buffers out %d, baseline %d: leaked pooled buffers", got, bufBase)
	}
	if n := leftoverSpillDirs(t); n != 0 {
		t.Errorf("%d spill scratch dirs left behind", n)
	}
}

// TestSpillWorkerDiskFullFailsJob simulates the disk filling mid-run-file:
// the worker's write leaves a truncated file and reports ENOSPC. The job
// must fail with ENOSPC, remote-shuffle encode buffers must return to the
// pool (the failure crosses the map flush path of a multi-place shuffle),
// and the partial spill file must be cleaned up with the job.
func TestSpillWorkerDiskFullFailsJob(t *testing.T) {
	var calls atomic.Int64
	swapSpillWrite(t, func(path string, enc spill.EncodedRun) (int64, error) {
		if calls.Add(1) == 1 {
			os.WriteFile(path, []byte("partial run"), 0o644)
			return 0, fmt.Errorf("write %s: %w", path, syscall.ENOSPC)
		}
		return spill.WriteEncodedFile(path, enc)
	})

	e := newFaultEngine(t, 2)
	streamBase, bufBase := spill.OpenStreamCount(), encodeBufsOut.Load()
	_, err := e.Submit(spillingJob("/out/wc"))
	if err == nil {
		t.Fatal("job with full disk succeeded")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("job error does not carry ENOSPC: %v", err)
	}
	if got := spill.OpenStreamCount(); got != streamBase {
		t.Errorf("OpenStreamCount %d, baseline %d", got, streamBase)
	}
	if got := encodeBufsOut.Load(); got != bufBase {
		t.Errorf("encode buffers out %d, baseline %d", got, bufBase)
	}
	if n := leftoverSpillDirs(t); n != 0 {
		t.Errorf("%d spill scratch dirs (with the partial file) left behind", n)
	}
}

// TestSpillWorkerPanicDoesNotHang: a panic under the spill write path must
// convert to a job failure — the worker keeps draining its queue so map
// tasks blocked on a full queue always unblock, and Submit returns.
func TestSpillWorkerPanicDoesNotHang(t *testing.T) {
	swapSpillWrite(t, func(path string, enc spill.EncodedRun) (int64, error) {
		panic("simulated corruption in the spill encoder")
	})

	e := newFaultEngine(t, 1)
	_, err := e.Submit(spillingJob("/out/wc"))
	if err == nil {
		t.Fatal("job with panicking spill worker succeeded")
	}
	if !strings.Contains(err.Error(), "spill worker panicked") {
		t.Fatalf("panic not surfaced as a worker failure: %v", err)
	}
	if n := leftoverSpillDirs(t); n != 0 {
		t.Errorf("%d spill scratch dirs left behind", n)
	}
}

// --- white-box lifecycle: release + readmission ---

// newSpillExec builds a minimal one-place jobExec for exercising the
// partitionInput lifecycle without a cluster.
func newSpillExec(budget int64, queueDepth int, readmit bool, codec spill.Codec) *jobExec {
	e := &Engine{stats: sim.NewStats(), cost: sim.Zero()}
	x := &jobExec{e: e, jobID: "job_test_0001", jc: counters.New(),
		shuffleBudget: budget, readmit: readmit, codec: codec}
	if budget > 0 {
		x.budgets = []*engine.JobBudget{engine.NewBudgetPool(budget).Job(x.jobID, 0)}
		x.resident = []*residentSet{newResidentSet()}
		if queueDepth > 0 {
			x.spillQ = []*spillQueue{newSpillQueue(x, 0, queueDepth)}
		}
	}
	return x
}

// textRun builds a sorted run of (prefix###, i) pairs.
func textRun(prefix string, n int) []wio.Pair {
	out := make([]wio.Pair, n)
	for i := range out {
		out[i] = wio.Pair{Key: types.NewText(fmt.Sprintf("%s%04d", prefix, i)), Value: types.NewInt(int32(i))}
	}
	return out
}

// drainMerge merges readers and returns the marshaled (key,value) stream,
// asserting the accountant ends the merge with zero bytes held.
func drainMerge(t *testing.T, x *jobExec, readers []engine.RunReader) []string {
	t.Helper()
	m, err := engine.NewMergeIter(readers, wio.NaturalOrder{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var out []string
	for {
		p, ok, err := m.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			return out
		}
		kb, _ := wio.Marshal(p.Key)
		vb, _ := wio.Marshal(p.Value)
		out = append(out, string(kb)+"\x00"+string(vb))
	}
}

// TestBudgetReleaseAndReadmission walks the full lifecycle deterministically:
// a resident run fills the budget, later runs spill, draining the first
// partition releases its bytes (BUDGET_RELEASED_BYTES), and the next
// partition's merge-open readmits its spilled run into the freed budget
// (READMITTED_RUNS) — with the readmitted merge byte-identical to the
// stream-backed one.
func TestBudgetReleaseAndReadmission(t *testing.T) {
	runA, runB, runC := textRun("a", 40), textRun("b", 40), textRun("c", 40)
	_, _, _, size, err := encodeRun(runA)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: what partition 2's merge must yield, from an unbudgeted run.
	ref := newSpillExec(0, 0, false, spill.CodecNone)
	refPi := &partitionInput{x: ref, place: 0}
	ctx := engine.NewTaskContext(conf.NewJob(), "task", nil)
	if err := refPi.addRun(ctx, 0, textRun("c", 40)); err != nil {
		t.Fatal(err)
	}
	refReaders, err := refPi.takeReaders(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := drainMerge(t, ref, refReaders)

	x := newSpillExec(size, 0, true, spill.CodecNone) // budget = exactly one run
	defer x.cleanup()
	pi1 := &partitionInput{x: x, place: 0}
	pi2 := &partitionInput{x: x, place: 0}
	if err := pi1.addRun(ctx, 0, runA); err != nil { // resident, fills budget
		t.Fatal(err)
	}
	if err := pi1.addRun(ctx, 1, runB); err != nil { // overflows: spills
		t.Fatal(err)
	}
	if err := pi2.addRun(ctx, 0, runC); err != nil { // overflows: spills
		t.Fatal(err)
	}
	if got := ctx.Cells.SpilledRuns.Value(); got != 2 {
		t.Fatalf("SpilledRuns=%d want 2", got)
	}
	if got := x.budgets[0].Held(); got != size {
		t.Fatalf("held=%d want %d after collect", got, size)
	}

	// Partition 1 reduces: B cannot readmit (budget still full), so it
	// stream-decodes; draining the merge releases A's reservation.
	streamBase := spill.OpenStreamCount()
	r1, err := pi1.takeReaders(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := spill.OpenStreamCount(); got != streamBase+1 {
		t.Fatalf("OpenStreamCount=%d want %d: run B should be stream-backed", got, streamBase+1)
	}
	if got := len(drainMerge(t, x, r1)); got != 80 {
		t.Fatalf("partition 1 merged %d pairs, want 80", got)
	}
	if got := x.budgets[0].Held(); got != 0 {
		t.Fatalf("held=%d want 0 after partition 1 drained", got)
	}
	if got := ctx.Cells.BudgetReleasedBytes.Value(); got != size {
		t.Fatalf("BudgetReleasedBytes=%d want %d", got, size)
	}
	if got := ctx.Cells.ReadmittedRuns.Value(); got != 0 {
		t.Fatalf("ReadmittedRuns=%d want 0 so far", got)
	}

	// Partition 2 opens with the budget free: C readmits into memory — no
	// stream stays open past the decode — and merges byte-identically.
	r2, err := pi2.takeReaders(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := spill.OpenStreamCount(); got != streamBase {
		t.Fatalf("OpenStreamCount=%d want %d: readmitted run must not hold a stream", got, streamBase)
	}
	if got := ctx.Cells.ReadmittedRuns.Value(); got != 1 {
		t.Fatalf("ReadmittedRuns=%d want 1", got)
	}
	if got := x.budgets[0].Held(); got != size {
		t.Fatalf("held=%d want %d while readmitted run is live", got, size)
	}
	got := drainMerge(t, x, r2)
	if len(got) != len(want) {
		t.Fatalf("readmitted merge %d pairs vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d differs after readmission", i)
		}
	}
	if held := x.budgets[0].Held(); held != 0 {
		t.Fatalf("held=%d want 0 after everything drained", held)
	}
	if rel := ctx.Cells.BudgetReleasedBytes.Value(); rel != 2*size {
		t.Fatalf("BudgetReleasedBytes=%d want %d", rel, 2*size)
	}
}

// FuzzSpillQueue feeds fuzzer-shaped runs through the spill lifecycle at a
// fuzzer-chosen budget, queue depth and spill codec, and pins the three
// invariants the pipeline promises at every setting: the merged stream is
// byte-identical to the synchronous unqueued raw-codec path, no spill
// stream stays open, and the accountant returns to zero once the merge
// drains.
func FuzzSpillQueue(f *testing.F) {
	f.Add([]byte("the quick brown fox jumps over the lazy dog"), uint8(3), uint8(2), uint8(64), false, false)
	f.Add([]byte("aaaa bbbb aaaa cccc"), uint8(5), uint8(1), uint8(4), true, true)
	f.Add([]byte(""), uint8(1), uint8(0), uint8(0), false, false)
	f.Add([]byte("pad pad pad compress me compress me"), uint8(2), uint8(3), uint8(16), true, true)
	f.Fuzz(func(t *testing.T, data []byte, nruns, depth, budgetScale uint8, readmit, flate bool) {
		runs := int(nruns%6) + 1
		queueDepth := int(depth % 4) // 0 = synchronous
		budget := int64(budgetScale) * 8
		codec := spill.CodecNone
		if flate {
			codec = spill.CodecFlate
		}

		// Slice the fuzz bytes into `runs` sorted runs of Text/Int pairs.
		words := strings.Fields(string(data))
		mkRuns := func() [][]wio.Pair {
			out := make([][]wio.Pair, runs)
			for i, w := range words {
				r := i % runs
				out[r] = append(out[r], wio.Pair{Key: types.NewText(w), Value: types.NewInt(int32(i))})
			}
			for _, pairs := range out {
				engine.SortPairs(pairs, wio.NaturalOrder{})
			}
			return out
		}

		drive := func(budget int64, queueDepth int, readmit bool, codec spill.Codec) []string {
			x := newSpillExec(budget, queueDepth, readmit, codec)
			defer x.cleanup()
			pi := &partitionInput{x: x, place: 0}
			ctx := engine.NewTaskContext(conf.NewJob(), "task", nil)
			for src, pairs := range mkRuns() {
				if err := pi.addRun(ctx, src, pairs); err != nil {
					t.Fatal(err)
				}
			}
			for _, q := range x.spillQ {
				if err := q.drain(); err != nil {
					t.Fatal(err)
				}
			}
			readers, err := pi.takeReaders(ctx)
			if err != nil {
				t.Fatal(err)
			}
			out := drainMerge(t, x, readers)
			engine.CloseAllOnErr(readers) // idempotent: everything is drained
			if x.budgets != nil {
				if held := x.budgets[0].Held(); held != 0 {
					t.Fatalf("held=%d after full drain", held)
				}
			}
			return out
		}

		streamBase := spill.OpenStreamCount()
		want := drive(0, 0, false, spill.CodecNone) // unbudgeted in-memory reference
		got := drive(budget, queueDepth, readmit, codec)
		if len(got) != len(want) {
			t.Fatalf("budget=%d queue=%d readmit=%v: %d pairs vs %d", budget, queueDepth, readmit, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("budget=%d queue=%d readmit=%v: pair %d differs", budget, queueDepth, readmit, i)
			}
		}
		if n := spill.OpenStreamCount(); n != streamBase {
			t.Fatalf("OpenStreamCount=%d baseline %d", n, streamBase)
		}
	})
}

// TestCompressedSpillChargesStoredBytesAndReadmitsRawSize pins the codec's
// accounting contract end to end: with flate configured, SPILLED_BYTES
// counts the stored (compressed) bytes and SPILLED_RAW_BYTES the raw
// record-format bytes (so stored < raw on repetitive runs); the budget,
// however, keeps accounting in raw in-memory sizes — a readmitted
// compressed run reserves its full raw size, not its compressed one — and
// the merge output stays byte-identical to the raw-codec lifecycle.
func TestCompressedSpillChargesStoredBytesAndReadmitsRawSize(t *testing.T) {
	_, _, _, size, err := encodeRun(textRun("aaaa", 40))
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the raw-codec lifecycle at identical settings.
	drive := func(codec spill.Codec) ([]string, *engine.TaskContext, *jobExec) {
		x := newSpillExec(size, 0, true, codec) // budget = exactly one run
		pi1 := &partitionInput{x: x, place: 0}
		pi2 := &partitionInput{x: x, place: 0}
		ctx := engine.NewTaskContext(conf.NewJob(), "task", nil)
		if err := pi1.addRun(ctx, 0, textRun("aaaa", 40)); err != nil { // resident
			t.Fatal(err)
		}
		if err := pi2.addRun(ctx, 0, textRun("cccc", 40)); err != nil { // spills
			t.Fatal(err)
		}
		r1, err := pi1.takeReaders(ctx)
		if err != nil {
			t.Fatal(err)
		}
		out := drainMerge(t, x, r1) // releases A's reservation
		// Partition 2 opens with budget free: C readmits from its
		// compressed run file.
		r2, err := pi2.takeReaders(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if got := ctx.Cells.ReadmittedRuns.Value(); got != 1 {
			t.Fatalf("codec %s: ReadmittedRuns=%d want 1", codec, got)
		}
		if held := x.budgets[0].Held(); held != size {
			t.Fatalf("codec %s: readmitted run holds %d budget bytes, want raw size %d", codec, held, size)
		}
		out = append(out, drainMerge(t, x, r2)...)
		return out, ctx, x
	}

	want, refCtx, refX := drive(spill.CodecNone)
	defer refX.cleanup()
	got, ctx, x := drive(spill.CodecFlate)
	defer x.cleanup()

	if len(got) != len(want) {
		t.Fatalf("flate lifecycle yielded %d pairs, raw yielded %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d differs between flate and raw lifecycles", i)
		}
	}
	stored, raw := ctx.Cells.SpilledBytes.Value(), ctx.Cells.SpilledRawBytes.Value()
	if raw == 0 || stored == 0 {
		t.Fatalf("spill accounting silent: stored=%d raw=%d", stored, raw)
	}
	if stored >= raw {
		t.Fatalf("flate spill stored %d bytes >= raw %d on repetitive keys", stored, raw)
	}
	if refStored, refRaw := refCtx.Cells.SpilledBytes.Value(), refCtx.Cells.SpilledRawBytes.Value(); refStored != refRaw {
		t.Fatalf("codec none: stored %d != raw %d — raw layout must charge identical numbers", refStored, refRaw)
	}
	// The engine's stats and disk cost follow the stored bytes.
	if got := x.e.stats.Get(sim.SpillBytes); got != stored {
		t.Fatalf("sim spill.bytes=%d, counters say %d", got, stored)
	}
	if got := x.e.stats.Get(sim.SpillRawBytes); got != raw {
		t.Fatalf("sim spill.raw.bytes=%d, counters say %d", got, raw)
	}
}
