package m3r

import (
	"errors"
	"testing"

	"m3r/internal/conf"
	"m3r/internal/engine"
	"m3r/internal/spill"
	"m3r/internal/wio"
)

// TestLargestFirstEvictionKeepsSmallRuns is the policy's deterministic pin:
// with a budget that exactly fits one big run, a big run arrives first and
// goes resident; a later, smaller run contends — and instead of spilling the
// newcomer (first-come, the old policy), the pool evicts the big resident
// run to disk and keeps the small one in memory, then admits a second small
// run into the remaining freed budget with no further eviction. The merged
// output stays byte-identical to the unbudgeted path and the job's budget
// drains to zero.
func TestLargestFirstEvictionKeepsSmallRuns(t *testing.T) {
	big, smallB, smallC := textRun("aaaaaa", 60), textRun("b", 10), textRun("c", 10)
	_, _, _, bigSize, err := encodeRun(big)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, smallSize, err := encodeRun(smallB)
	if err != nil {
		t.Fatal(err)
	}
	if 2*smallSize > bigSize {
		t.Fatalf("test geometry broken: 2*small=%d > big=%d", 2*smallSize, bigSize)
	}

	// Unbudgeted reference for the byte-identity check.
	ref := newSpillExec(0, 0, false, spill.CodecNone)
	refPi := &partitionInput{x: ref, place: 0}
	ctx := engine.NewTaskContext(conf.NewJob(), "task", nil)
	for src, pairs := range [][]wio.Pair{textRun("aaaaaa", 60), textRun("b", 10), textRun("c", 10)} {
		if err := refPi.addRun(ctx, src, pairs); err != nil {
			t.Fatal(err)
		}
	}
	refReaders, err := refPi.takeReaders(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := drainMerge(t, ref, refReaders)

	x := newSpillExec(bigSize, 0, false, spill.CodecNone) // budget = exactly the big run
	defer x.cleanup()
	pi := &partitionInput{x: x, place: 0}
	ctx = engine.NewTaskContext(conf.NewJob(), "task", nil)

	if err := pi.addRun(ctx, 0, big); err != nil {
		t.Fatal(err)
	}
	if got := x.budgets[0].Held(); got != bigSize {
		t.Fatalf("held=%d want %d after the big run", got, bigSize)
	}
	if got := x.resident[0].size(); got != 1 {
		t.Fatalf("resident index holds %d runs, want 1", got)
	}

	// The small run contends; the big run is the victim, not the newcomer.
	if err := pi.addRun(ctx, 1, smallB); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Cells.EvictedResidentRuns.Value(); got != 1 {
		t.Fatalf("EVICTED_RESIDENT_RUNS=%d want 1", got)
	}
	if got := ctx.Cells.SpilledRuns.Value(); got != 1 {
		t.Fatalf("SpilledRuns=%d want 1 (the evicted big run)", got)
	}
	if got := ctx.Cells.PoolContendedBytes.Value(); got != smallSize {
		t.Fatalf("POOL_CONTENDED_BYTES=%d want %d", got, smallSize)
	}
	if got := x.budgets[0].Held(); got != smallSize {
		t.Fatalf("held=%d want %d: small resident, big on disk", got, smallSize)
	}

	// A second small run fits the freed budget outright: no new eviction.
	if err := pi.addRun(ctx, 2, smallC); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Cells.EvictedResidentRuns.Value(); got != 1 {
		t.Fatalf("EVICTED_RESIDENT_RUNS=%d after an uncontended admit, want 1", got)
	}
	if got := x.budgets[0].Held(); got != 2*smallSize {
		t.Fatalf("held=%d want %d: both small runs resident", got, 2*smallSize)
	}

	// The big run's slot flipped in place: still src 0, now spilled, so the
	// merge's source-order tie-break — and the output bytes — are untouched.
	streamBase := spill.OpenStreamCount()
	readers, err := pi.takeReaders(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got := spill.OpenStreamCount(); got != streamBase+1 {
		t.Fatalf("OpenStreamCount=%d want %d: exactly the evicted run streams from disk", got, streamBase+1)
	}
	got := drainMerge(t, x, readers)
	if len(got) != len(want) {
		t.Fatalf("merged %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d differs after eviction", i)
		}
	}
	if held := x.budgets[0].Held(); held != 0 {
		t.Fatalf("held=%d want 0 after the merge drained", held)
	}
}

// TestEvictionNeverTradesForEqualOrLarger: a newcomer the same size as (or
// larger than) every resident run must spill itself — evicting an
// equal-sized run would churn disk for zero resident gain, and evicting a
// smaller one would be the opposite of the policy.
func TestEvictionNeverTradesForEqualOrLarger(t *testing.T) {
	runA, runB := textRun("a", 20), textRun("b", 20) // identical sizes
	_, _, _, size, err := encodeRun(runA)
	if err != nil {
		t.Fatal(err)
	}
	x := newSpillExec(size, 0, false, spill.CodecNone)
	defer x.cleanup()
	pi := &partitionInput{x: x, place: 0}
	ctx := engine.NewTaskContext(conf.NewJob(), "task", nil)
	if err := pi.addRun(ctx, 0, runA); err != nil {
		t.Fatal(err)
	}
	if err := pi.addRun(ctx, 1, runB); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Cells.EvictedResidentRuns.Value(); got != 0 {
		t.Fatalf("EVICTED_RESIDENT_RUNS=%d: evicted an equal-sized run", got)
	}
	if got := ctx.Cells.SpilledRuns.Value(); got != 1 {
		t.Fatalf("SpilledRuns=%d want 1 (the newcomer)", got)
	}
	if got := x.budgets[0].Held(); got != size {
		t.Fatalf("held=%d want %d: first run still resident", got, size)
	}
}

// TestEvictionWriteErrorFailsAdmission: a disk failure during the eviction
// re-spill must surface through addRun — and with it fail the map task —
// with the victim's reservation state consistent (the victim was claimed but
// its bytes never released, so the job's cleanup drain reclaims them).
func TestEvictionWriteErrorFailsAdmission(t *testing.T) {
	injected := errors.New("injected eviction write error")
	swapSpillWrite(t, func(string, spill.EncodedRun) (int64, error) { return 0, injected })

	big, small := textRun("aaaaaa", 60), textRun("b", 10)
	_, _, _, bigSize, err := encodeRun(big)
	if err != nil {
		t.Fatal(err)
	}
	x := newSpillExec(bigSize, 0, false, spill.CodecNone)
	pi := &partitionInput{x: x, place: 0}
	ctx := engine.NewTaskContext(conf.NewJob(), "task", nil)
	if err := pi.addRun(ctx, 0, big); err != nil {
		t.Fatal(err) // resident: no write involved
	}
	if err := pi.addRun(ctx, 1, small); !errors.Is(err, injected) {
		t.Fatalf("eviction write error not surfaced: %v", err)
	}
	// The failed job's cleanup still returns every byte.
	x.cleanup()
	if held := x.budgets[0].Held(); held != 0 {
		t.Fatalf("held=%d after cleanup of a failed job", held)
	}
}
