package m3r

import (
	"fmt"
	"sync"

	"m3r/internal/engine"
	"m3r/internal/sim"
	"m3r/internal/spill"
)

// This file implements the largest-first spill policy's resident-run index.
// When a budgeted run cannot reserve its bytes, the pool's admission loop
// (engine.JobBudget.ReserveEvicting) asks the place's residentSet for the
// largest cold resident run of the same job that is strictly larger than
// the newcomer, re-spills it, and retries — so under contention the runs
// that go to disk are the big ones, keeping the maximum number of small
// runs resident per byte of budget instead of penalizing whichever run
// arrived last.
//
// Scope and safety: runs enter the index when they are admitted resident
// (map phase) and leave it when they are claimed for eviction; evictions
// only ever happen from addRun, which only runs before the shuffle barrier,
// and reducers only open merges after it — so an eviction can never race a
// takeReaders on the same run. The index is per (job, place) and evicts
// only its own job's runs: on a shared engine pool, one job's contention
// never re-spills another job's resident data. The index is dropped at the
// barrier so it does not pin detached runs' pairs through the reduce phase.

// residentSet indexes one place's budgeted resident runs for eviction.
type residentSet struct {
	mu   sync.Mutex
	seq  int64
	runs map[*sourceRun]residentEntry
}

// residentEntry locates one candidate: its partition, and its admission
// sequence number — the total tie-break takeLargest needs (src alone is not
// total: one map task installs equal-sized runs into several partitions at
// the same place).
type residentEntry struct {
	pi    *partitionInput
	order int64
}

func newResidentSet() *residentSet {
	return &residentSet{runs: make(map[*sourceRun]residentEntry)}
}

// add registers a freshly admitted resident run as an eviction candidate.
func (rs *residentSet) add(r *sourceRun, pi *partitionInput) {
	rs.mu.Lock()
	rs.seq++
	rs.runs[r] = residentEntry{pi: pi, order: rs.seq}
	rs.mu.Unlock()
}

// takeLargest claims the largest resident run strictly larger than min,
// removing it from the index so concurrent contenders cannot evict the same
// run twice. Ties break toward the lower source index, then the earlier
// admission — a total order, so the choice is a deterministic function of
// the arrival sequence, never of map iteration order. Returns nils when no
// run qualifies — the policy never evicts a run to admit an equal-or-larger
// one, which both bounds the admission loop and is the point of
// largest-first.
func (rs *residentSet) takeLargest(min int64) (*sourceRun, *partitionInput) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var best *sourceRun
	var bestE residentEntry
	for r, e := range rs.runs {
		if r.size <= min {
			continue
		}
		if best == nil || r.size > best.size ||
			(r.size == best.size && (r.src < best.src || (r.src == best.src && e.order < bestE.order))) {
			best, bestE = r, e
		}
	}
	if best == nil {
		return nil, nil
	}
	delete(rs.runs, best)
	return best, bestE.pi
}

// clear drops every candidate (the shuffle barrier passed: no more
// contention, and the index must not pin run memory through reduce).
func (rs *residentSet) clear() {
	rs.mu.Lock()
	rs.runs = nil
	rs.mu.Unlock()
}

// size reports the current candidate count (tests).
func (rs *residentSet) size() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.runs)
}

// evictLargest is the eviction callback behind the pool's admission loop:
// re-spill the largest cold resident run at place that is strictly larger
// than min, returning the size of the reservation it frees (0 when no run
// qualifies). The victim's reservation is NOT released here — the pool
// folds the release into the retry atomically (releaseAndReserve), so a
// concurrent job sharing the pool cannot steal the freed bytes between the
// eviction and the admission it paid for. The victim's slot flips from
// resident to spilled in place — same src, same partition — so the merge's
// source-order tie-break, and with it the byte-identical-output guarantee,
// is untouched; the only observable differences are the freed budget and
// the spill/eviction counters. The write is synchronous: eviction happens
// inside an admission already stalled on memory, and routing it through the
// spill queue would let the admission succeed before the victim's bytes are
// actually on their way to disk.
func (x *jobExec) evictLargest(ctx *engine.TaskContext, place int, min int64) (int64, error) {
	victim, pi := x.resident[place].takeLargest(min)
	if victim == nil {
		return 0, nil
	}
	// Re-encode the victim (its collect-time encoding was dropped once the
	// size was known; re-paying it here keeps the uncontended path lean).
	recs, keyClass, valClass, _, err := encodeRun(victim.pairs)
	if err != nil {
		// Cannot happen for a run that encoded at admission; fail loudly
		// rather than silently dropping the eviction candidate.
		return 0, fmt.Errorf("m3r: re-encoding resident run for eviction: %w", err)
	}
	enc, err := spill.EncodeRun(recs, x.codec)
	if err != nil {
		return 0, err
	}
	path, err := x.spillPath()
	if err != nil {
		return 0, err
	}
	if _, err := spillWriteRun(path, enc); err != nil {
		return 0, err
	}
	size := victim.size
	pi.mu.Lock()
	victim.pairs = nil
	victim.size = 0
	victim.spill = &spilledRun{path: path, keyClass: keyClass, valClass: valClass, size: size}
	pi.mu.Unlock()
	x.chargeSpill(ctx, enc, len(recs))
	ctx.Cells.EvictedResidentRuns.Increment(1)
	x.e.stats.Add(sim.EvictedRuns, 1)
	return size, nil
}
