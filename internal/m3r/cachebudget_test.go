package m3r

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"m3r/internal/dfs"
	"m3r/internal/engine"
	"m3r/internal/sim"
	"m3r/internal/spill"
	"m3r/internal/types"
)

// newBudgetedCache wires a cache to a cacheGovernor over private per-place
// pools of budget bytes — the unpooled-engine construction from m3r.New.
func newBudgetedCache(t *testing.T, places int, budget int64) (*Cache, *cacheGovernor, *sim.Stats) {
	t.Helper()
	c, _ := newTestCache(places)
	stats := sim.NewStats()
	budgets := make([]*engine.JobBudget, places)
	for p := range budgets {
		budgets[p] = engine.NewBudgetPool(budget).Job(cacheTag, 0)
	}
	g := newCacheGovernor(stats, c.Store(), budgets, spill.CodecNone)
	c.Store().SetResidency(g)
	t.Cleanup(func() {
		c.Store().SetResidency(nil)
		g.close()
	})
	return c, g, stats
}

// entrySize measures the accounting size of an n-pair output entry by
// committing it under a generous budget and reading the resident gauge.
func entrySize(t *testing.T, n int) int64 {
	t.Helper()
	c, g, _ := newBudgetedCache(t, 1, 1<<30)
	writeOutput(t, c, 0, "/probe", n)
	if got := g.residentBytes(); got > 0 {
		return got
	}
	t.Fatal("probe entry not accounted")
	return 0
}

func writeOutput(t *testing.T, c *Cache, place int, path string, n int) {
	t.Helper()
	w, err := c.NewOutputWriter(place, path, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range somePairs(n) {
		w.Append(p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func checkPairs(t *testing.T, c *Cache, path string, n int) {
	t.Helper()
	pairs, ok, err := c.PathPairs(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if !ok || len(pairs) != n {
		t.Fatalf("read %s: ok=%v n=%d want %d", path, ok, len(pairs), n)
	}
	for i, p := range pairs {
		if p.Key.(*types.IntWritable).Get() != int32(i) {
			t.Fatalf("%s pair %d: got key %v", path, i, p.Key)
		}
	}
}

// ledgerQuiescent pins the tentpole's accounting invariant: at quiescence
// the cache tag's pool reservations equal the resident gauge exactly.
func ledgerQuiescent(t *testing.T, g *cacheGovernor) {
	t.Helper()
	if held, res := g.heldBytes(), g.residentBytes(); held != res {
		t.Fatalf("ledger: held=%d resident=%d", held, res)
	}
}

// TestCacheBudgetOverflowSpillsAndServes: a commit the pool cannot admit
// goes to disk cold from birth, reads stay transparent, and a denied
// readmit leaves the entry spilled without corrupting the ledger.
func TestCacheBudgetOverflowSpillsAndServes(t *testing.T) {
	size := entrySize(t, 8)
	c, g, stats := newBudgetedCache(t, 1, size) // room for exactly one entry
	writeOutput(t, c, 0, "/a", 8)
	if g.residentBytes() != size || g.spilledCount() != 0 {
		t.Fatalf("first entry should be resident: resident=%d spilled=%d", g.residentBytes(), g.spilledCount())
	}
	// Same-size newcomer: largest-first has no strictly larger victim, so
	// the newcomer itself spills.
	writeOutput(t, c, 0, "/b", 8)
	if g.spilledCount() != 1 {
		t.Fatalf("second entry should spill: spilled=%d", g.spilledCount())
	}
	ledgerQuiescent(t, g)
	// The spilled entry reads transparently; the budget is full, so the
	// read must NOT readmit it.
	checkPairs(t, c, "/b", 8)
	if g.readmittedCount() != 0 {
		t.Fatalf("full budget must deny readmit, got %d", g.readmittedCount())
	}
	checkPairs(t, c, "/a", 8)
	ledgerQuiescent(t, g)
	// Dropping the resident entry frees budget; the next read of /b
	// promotes it back to memory.
	if err := c.Drop("/a"); err != nil {
		t.Fatal(err)
	}
	if g.residentBytes() != 0 || g.heldBytes() != 0 {
		t.Fatalf("drop should drain: resident=%d held=%d", g.residentBytes(), g.heldBytes())
	}
	checkPairs(t, c, "/b", 8)
	if g.readmittedCount() != 1 {
		t.Fatalf("read should readmit into freed budget, got %d", g.readmittedCount())
	}
	if g.residentBytes() != size {
		t.Fatalf("readmitted entry not accounted: %d", g.residentBytes())
	}
	ledgerQuiescent(t, g)
	if stats.Get(sim.CacheSpilledEntries) != 1 || stats.Get(sim.CacheReadmittedEntries) != 1 {
		t.Fatalf("stats: spilled=%d readmitted=%d", stats.Get(sim.CacheSpilledEntries), stats.Get(sim.CacheReadmittedEntries))
	}
}

// TestCacheBudgetEvictsLargestFirst: a smaller newcomer evicts a strictly
// larger cold resident instead of spilling itself.
func TestCacheBudgetEvictsLargestFirst(t *testing.T) {
	big := entrySize(t, 32)
	c, g, _ := newBudgetedCache(t, 1, big)
	writeOutput(t, c, 0, "/big", 32)
	writeOutput(t, c, 0, "/small", 4)
	if g.spilledCount() != 1 {
		t.Fatalf("the big entry should have been evicted: spilled=%d", g.spilledCount())
	}
	small := g.residentBytes()
	if small <= 0 || small >= big {
		t.Fatalf("the small newcomer should be resident: resident=%d big=%d", small, big)
	}
	ledgerQuiescent(t, g)
	// Both entries read back intact, evicted or not.
	checkPairs(t, c, "/big", 32)
	checkPairs(t, c, "/small", 4)
	ledgerQuiescent(t, g)
}

// TestCacheBudgetSplitEntries: input-split entries go through the same
// admission, spill on overflow, and survive byte-identically.
func TestCacheBudgetSplitEntries(t *testing.T) {
	c, g, _ := newBudgetedCache(t, 2, 1) // admits nothing
	if err := c.PutSplit(1, "/data/f:0+100", somePairs(6)); err != nil {
		t.Fatal(err)
	}
	if g.spilledCount() != 1 || g.residentBytes() != 0 {
		t.Fatalf("split entry should spill under a full budget: spilled=%d resident=%d", g.spilledCount(), g.residentBytes())
	}
	ranges, ok, err := c.LookupSplit("/data/f:0+100", nil)
	if err != nil || !ok {
		t.Fatalf("lookup: ok=%v err=%v", ok, err)
	}
	pairs, _, err := c.ReadRanges(1, ranges)
	if err != nil || len(pairs) != 6 {
		t.Fatalf("read spilled split: n=%d err=%v", len(pairs), err)
	}
	ledgerQuiescent(t, g)
}

// TestCacheGovernorCloseDrains: closing the governor returns every cache
// reservation and removes the spill directory.
func TestCacheGovernorCloseDrains(t *testing.T) {
	size := entrySize(t, 8)
	c, _ := newTestCache(1)
	stats := sim.NewStats()
	pool := engine.NewBudgetPool(size)
	budgets := []*engine.JobBudget{pool.Job(cacheTag, 0)}
	g := newCacheGovernor(stats, c.Store(), budgets, spill.CodecNone)
	c.Store().SetResidency(g)
	writeOutput(t, c, 0, "/a", 8)
	writeOutput(t, c, 0, "/b", 8) // spills, populating the spill dir
	g.dirMu.Lock()
	dir := g.dir
	g.dirMu.Unlock()
	if dir == "" {
		t.Fatal("spill dir not created")
	}
	c.Store().SetResidency(nil)
	g.close()
	if pool.Held() != 0 {
		t.Fatalf("close must drain the pool, held=%d", pool.Held())
	}
	if _, err := os.Stat(dir); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("spill dir should be removed: %v", err)
	}
}

// TestPathPairsDistinguishesErrorFromMiss is the satellite regression for
// Cache.PathPairs: a real read failure on a cached entry (here, a spilled
// block whose file is gone) must surface as an error, not as "not cached" —
// while a genuine miss stays ok=false with no error.
func TestPathPairsDistinguishesErrorFromMiss(t *testing.T) {
	c, g, _ := newBudgetedCache(t, 1, 1) // everything spills
	writeOutput(t, c, 0, "/o/f", 5)
	if g.spilledCount() != 1 {
		t.Fatalf("entry should have spilled: %d", g.spilledCount())
	}
	// A miss is not an error.
	if _, ok, err := c.PathPairs("/no/such"); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
	// Destroy the spilled image and read: the entry IS cached, the read
	// fails — the caller must see the failure, not a miss.
	g.dirMu.Lock()
	dir := g.dir
	g.dirMu.Unlock()
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("spill dir: %v entries=%d", err, len(ents))
	}
	for _, e := range ents {
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := c.PathPairs("/o/f"); err == nil {
		t.Fatalf("broken read must error, got ok=%v", ok)
	}
}

// TestGetCacheRecordReaderPropagatesReadError: the CacheFS query surfaces
// PathPairs' new error return instead of reporting "not cached".
func TestGetCacheRecordReaderPropagatesReadError(t *testing.T) {
	c, rt := newTestCache(1)
	budgets := []*engine.JobBudget{engine.NewBudgetPool(1).Job(cacheTag, 0)}
	g := newCacheGovernor(sim.NewStats(), c.Store(), budgets, spill.CodecNone)
	c.Store().SetResidency(g)
	t.Cleanup(func() { c.Store().SetResidency(nil); g.close() })
	backing, err := dfs.NewHDFS(dfs.HDFSOptions{Root: t.TempDir(), Hosts: []string{"node0"}})
	if err != nil {
		t.Fatal(err)
	}
	cfs := NewCachingFileSystem(backing, c, rt)
	writeOutput(t, c, 0, "/o/f", 5)
	g.dirMu.Lock()
	os.RemoveAll(g.dir)
	g.dirMu.Unlock()
	if _, ok, err := cfs.GetCacheRecordReader("/o/f"); err == nil {
		t.Fatalf("broken read must error, got ok=%v", ok)
	}
	if _, ok, err := cfs.GetCacheRecordReader("/absent"); ok || err != nil {
		t.Fatalf("miss: ok=%v err=%v", ok, err)
	}
}

// TestBlockPairsMalformedTagFailsLoudly is the satellite regression for
// blockPairs: a multi-block entry whose block tag is missing or malformed
// must fail the lookup loudly instead of silently contributing 0 pairs.
func TestBlockPairsMalformedTagFailsLoudly(t *testing.T) {
	c, _ := newTestCache(1)
	// Two blocks on one cache-only path: the first with a well-formed
	// pair-count tag, the second with a malformed one.
	for i, tag := range []string{"n=3", "bogus"} {
		w, err := c.Store().CreateWriter(0, "/multi", tag)
		if err != nil {
			t.Fatal(err)
		}
		w.AppendAll(somePairs(3))
		if _, err := w.Close(); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
	}
	if err := c.Store().SetAttr("/multi", attrCacheOnly, "1"); err != nil {
		t.Fatal(err)
	}
	view := &fileSplitView{path: "/multi", start: 0, length: 6}
	_, _, err := c.LookupSplit("/multi:0+6", view)
	if err == nil {
		t.Fatal("malformed multi-block tag must fail the lookup")
	}
	if !strings.Contains(err.Error(), "pair-count tag") {
		t.Fatalf("unexpected error: %v", err)
	}
	// A single-block entry without a tag still falls back to the path
	// total — the benign legacy layout stays readable.
	wr, err := c.Store().CreateWriter(0, "/single", "")
	if err != nil {
		t.Fatal(err)
	}
	wr.AppendAll(somePairs(4))
	if _, err := wr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Store().SetAttr("/single", attrCacheOnly, "1"); err != nil {
		t.Fatal(err)
	}
	ranges, ok, err := c.LookupSplit("/single:0+4", &fileSplitView{path: "/single", start: 0, length: 4})
	if err != nil || !ok || len(ranges) != 1 {
		t.Fatalf("single-block fallback: ok=%v ranges=%d err=%v", ok, len(ranges), err)
	}
}

// TestCacheOutputHomesBlocksAtPlace is the satellite regression for
// CachingFileSystem.CacheOutput: the entry's block must land at the writing
// task's place, not hardcoded place 0.
func TestCacheOutputHomesBlocksAtPlace(t *testing.T) {
	c, rt := newTestCache(3)
	backing, err := dfs.NewHDFS(dfs.HDFSOptions{Root: t.TempDir(), Hosts: []string{"node0", "node1", "node2"}})
	if err != nil {
		t.Fatal(err)
	}
	cfs := NewCachingFileSystem(backing, c, rt)
	for place := 0; place < 3; place++ {
		path := fmt.Sprintf("/side/part-%d", place)
		if err := cfs.CacheOutput(place, path, somePairs(2)); err != nil {
			t.Fatal(err)
		}
		info, ok := c.Store().GetInfo(path)
		if !ok || len(info.Blocks) != 1 {
			t.Fatalf("entry %s: ok=%v blocks=%d", path, ok, len(info.Blocks))
		}
		if got := info.Blocks[0].Place; got != place {
			t.Errorf("entry %s homed at place %d, want %d", path, got, place)
		}
	}
	if err := cfs.CacheOutput(7, "/side/out-of-range", somePairs(1)); err == nil {
		t.Error("out-of-range place must be rejected")
	}
}

// TestCacheCoherenceDirectoriesWithSplits: Drop and Move of directories
// apply to nested split entries too — the §3.2.1 transparency on whole
// output trees, not just single files.
func TestCacheCoherenceDirectoriesWithSplits(t *testing.T) {
	c, _ := newTestCache(2)
	for i := 0; i < 2; i++ {
		path := fmt.Sprintf("/job/out/part-0000%d", i)
		writeOutput(t, c, i, path, 3)
		if err := c.PutSplit(i, fmt.Sprintf("%s:0+3", path), somePairs(3)); err != nil {
			t.Fatal(err)
		}
	}
	// Move the whole directory: file entries and nested split entries
	// follow.
	if err := c.Move("/job/out", "/job/renamed"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.LookupSplit("/job/out/part-00000:0+3", nil); ok {
		t.Error("split entry reachable under the old directory name")
	}
	if _, ok, _ := c.LookupSplit("/job/renamed/part-00000:0+3", nil); !ok {
		t.Error("split entry not moved with its directory")
	}
	checkPairs(t, c, "/job/renamed/part-00001", 3)
	// Drop the directory: everything nested goes, split entries included.
	if err := c.Drop("/job/renamed"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, ok, _ := c.PathPairs(fmt.Sprintf("/job/renamed/part-0000%d", i)); ok {
			t.Errorf("file entry %d survived the directory drop", i)
		}
		if _, ok, _ := c.LookupSplit(fmt.Sprintf("/job/renamed/part-0000%d:0+3", i), nil); ok {
			t.Errorf("split entry %d survived the directory drop", i)
		}
	}
}

// TestCacheRenameOntoExisting: Move onto an existing cache path fails with
// ErrExists and leaves both entries intact — rename is not an implicit
// overwrite in the cache any more than in HDFS.
func TestCacheRenameOntoExisting(t *testing.T) {
	c, _ := newTestCache(1)
	writeOutput(t, c, 0, "/x", 2)
	writeOutput(t, c, 0, "/y", 4)
	if err := c.Move("/x", "/y"); !errors.Is(err, dfs.ErrExists) {
		t.Fatalf("rename onto existing path: %v", err)
	}
	checkPairs(t, c, "/x", 2)
	checkPairs(t, c, "/y", 4)
}

// TestOutputWriterAbortRacingClose: Abort (a failing task's cleanup) racing
// Close (the success path) must settle to one of the two outcomes — the
// committed entry or no entry — never a torn one, and never corrupt the
// budget ledger.
func TestOutputWriterAbortRacingClose(t *testing.T) {
	for i := 0; i < 20; i++ {
		c, g, _ := newBudgetedCache(t, 1, 1<<20)
		w, err := c.NewOutputWriter(0, "/race", true)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range somePairs(5) {
			w.Append(p)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); w.Close() }()
		go func() { defer wg.Done(); w.Abort() }()
		wg.Wait()
		if pairs, ok, err := c.PathPairs("/race"); err != nil {
			t.Fatal(err)
		} else if ok && len(pairs) != 0 && len(pairs) != 5 {
			t.Fatalf("torn entry: %d pairs", len(pairs))
		}
		// Whatever won, a final Drop must drain the entry's reservation.
		if err := c.Drop("/race"); err != nil {
			t.Fatal(err)
		}
		if g.heldBytes() != 0 || g.residentBytes() != 0 {
			t.Fatalf("iteration %d: held=%d resident=%d after drop", i, g.heldBytes(), g.residentBytes())
		}
		c.Store().SetResidency(nil)
		g.close()
	}
}
