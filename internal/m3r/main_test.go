package m3r

import (
	"testing"

	"m3r/internal/lint/leakcheck"
)

// TestMain fails the package when place goroutines, spill-queue workers,
// or merge workers outlive the tests — the static loopcancel/closecheck
// invariants' runtime counterpart (ROADMAP "Static analysis").
func TestMain(m *testing.M) { leakcheck.Main(m) }
