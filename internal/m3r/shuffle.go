package m3r

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"m3r/internal/conf"
	"m3r/internal/counters"
	"m3r/internal/dfs"
	"m3r/internal/engine"
	"m3r/internal/formats"
	"m3r/internal/mapred"
	"m3r/internal/sim"
	"m3r/internal/wio"
)

// shuffleCollector receives one map task's output and routes it to reduce
// partitions, implementing the paper's shuffle cost structure (§3.2.2):
//
//   - pairs for partitions co-located at this place are delivered without
//     serialization — aliased when the map side declared ImmutableOutput,
//     deep-cloned otherwise (§3.2.2.1, §4.1);
//   - pairs for remote places are serialized immediately into a
//     per-destination buffer through the de-duplicating encoder, so a
//     broadcast value crosses the wire once per place (§3.2.2.3);
//   - with a combiner configured, pairs are buffered per partition and
//     combined before delivery.
//
// At flush, every per-partition batch is sorted map-side before it is
// installed as a run in the partition's input: map tasks already run in
// parallel, so the sort rides the map phase's parallelism and the reduce
// task only has to k-way merge the runs (see engine.MergeRuns).
type shuffleCollector struct {
	x     *jobExec
	ctx   *engine.TaskContext
	place int
	src   int // map task index, for deterministic reduce input order
	R, P  int

	partitioner mapred.Partitioner
	immutable   bool
	// placeOf maps partition -> place, precomputed from the engine's
	// PlaceOfPartition so the §3.2.2.2 stability guarantee lives in exactly
	// one place and the hot path pays an array index, not a division.
	placeOf []int

	// Non-combiner path.
	localBufs map[int][]wio.Pair
	encoders  map[int]*destEncoder

	// Combiner path.
	combineBufs [][]wio.Pair
}

// destEncoder accumulates the encoded stream for one destination place.
// Its byte buffer comes from encodeBufPool and returns there at flush.
type destEncoder struct {
	buf *bytes.Buffer
	enc *wio.Encoder
	n   int
}

// encodeBufPool recycles the remote shuffle's encode buffers across map
// tasks and jobs; steady-state sequences reuse the grown buffers instead of
// re-paying their allocation every task. encodeBufsOut counts buffers
// checked out and not yet returned: every exit path of a task — commit,
// error, abort, panic — must bring it back to baseline, which the
// fault-injection tests pin (a leak here quietly bleeds grown buffers out
// of the pool on every failed job).
var (
	encodeBufPool = sync.Pool{
		New: func() any { return new(bytes.Buffer) },
	}
	encodeBufsOut atomic.Int64
)

// getEncodeBuf checks an encode buffer out of the pool.
func getEncodeBuf() *bytes.Buffer {
	encodeBufsOut.Add(1)
	return encodeBufPool.Get().(*bytes.Buffer)
}

// putEncodeBuf resets and returns a buffer to the pool.
func putEncodeBuf(b *bytes.Buffer) {
	b.Reset()
	encodeBufPool.Put(b)
	encodeBufsOut.Add(-1)
}

func (x *jobExec) newShuffleCollector(a *mapAssignment, ctx *engine.TaskContext) *shuffleCollector {
	sc := &shuffleCollector{
		x:           x,
		ctx:         ctx,
		place:       a.place,
		src:         a.index,
		R:           x.rj.NumReducers,
		P:           x.e.rt.NumPlaces(),
		partitioner: x.rj.NewPartitioner(),
		immutable:   engine.MapTaskImmutable(x.rj, a.split),
		localBufs:   make(map[int][]wio.Pair),
		encoders:    make(map[int]*destEncoder),
	}
	sc.placeOf = make([]int, sc.R)
	for q := range sc.placeOf {
		sc.placeOf[q] = x.e.PlaceOfPartition(q)
	}
	if x.rj.HasCombiner {
		sc.combineBufs = make([][]wio.Pair, sc.R)
	}
	return sc
}

// Collect implements the collector contract.
func (sc *shuffleCollector) Collect(key, value wio.Writable) error {
	// The map phase's per-record cancel check: one atomic load. The error
	// unwinds through the mapper into runMapTask's abort path, so the
	// collector's pooled buffers return on kill exactly as on any failure.
	if err := sc.x.lc.Err(); err != nil {
		return err
	}
	q := sc.partitioner.GetPartition(key, value, sc.R)
	if q < 0 || q >= sc.R {
		return fmt.Errorf("m3r: partitioner returned %d of %d", q, sc.R)
	}
	sc.ctx.Cells.MapOutputRecords.Increment(1)
	if sc.combineBufs != nil {
		// Buffer for the combiner; the mapper may reuse its objects, so
		// unmarked map sides pay a clone here.
		k, v := key, value
		if !sc.immutable {
			k, v = wio.MustClone(key), wio.MustClone(value)
			sc.countClone()
		} else {
			sc.countAlias()
		}
		sc.combineBufs[q] = append(sc.combineBufs[q], wio.Pair{Key: k, Value: v})
		return nil
	}
	return sc.deliver(q, key, value, sc.immutable)
}

func (sc *shuffleCollector) countClone() {
	sc.x.e.stats.Add(sim.ClonedPairs, 1)
	sc.ctx.Cells.ClonedPairs.Increment(1)
}

func (sc *shuffleCollector) countAlias() {
	sc.x.e.stats.Add(sim.AliasedPairs, 1)
	sc.ctx.Cells.AliasedPairs.Increment(1)
}

// deliver routes one pair to its partition's place.
func (sc *shuffleCollector) deliver(q int, key, value wio.Writable, immutable bool) error {
	d := sc.placeOf[q]
	if d == sc.place {
		// Co-located: no serialization ever (§3.2.2.1); clone only to
		// protect against output reuse (§4.1).
		k, v := key, value
		if !immutable {
			k, v = wio.MustClone(key), wio.MustClone(value)
			sc.countClone()
		} else {
			sc.countAlias()
		}
		sc.localBufs[q] = append(sc.localBufs[q], wio.Pair{Key: k, Value: v})
		sc.ctx.Cells.LocalShufflePairs.Increment(1)
		sc.x.e.stats.Add(sim.LocalPairs, 1)
		return nil
	}
	// Remote: serialize now (immediately, like Hadoop's collect — the
	// object may be reused right after we return) into the destination's
	// stream. De-duplication identifies repeats by object identity, which
	// is only sound when emitted objects are never mutated; on unmarked
	// map sides it is disabled (a reused-and-mutated object must not
	// back-reference its stale bytes). This mirrors real M3R, where
	// unmarked output is copied before the serializer ever sees it.
	de := sc.encoders[d]
	if de == nil {
		de = &destEncoder{buf: getEncodeBuf()}
		de.enc = wio.NewEncoder(de.buf, sc.x.dedup && immutable)
		sc.encoders[d] = de
	}
	if err := de.enc.EncodeUvarint(uint64(q)); err != nil {
		return err
	}
	if err := de.enc.EncodePair(wio.Pair{Key: key, Value: value}); err != nil {
		return err
	}
	de.n++
	sc.ctx.Cells.RemoteShufflePairs.Increment(1)
	return nil
}

// flush completes the task's shuffle: run the combiner if configured, sort
// each per-partition batch map-side, install the sorted runs into their
// partitions, and ship each remote buffer (decode on the destination side
// yields fresh objects, with dedup aliases for repeated values).
func (sc *shuffleCollector) flush() error {
	if sc.combineBufs != nil {
		for q, buf := range sc.combineBufs {
			if len(buf) == 0 {
				continue
			}
			combined, err := engine.Combine(sc.x.rj, buf, sc.ctx)
			if err != nil {
				return err
			}
			// Combine returns engine-owned pairs (cloned unless the
			// combiner is marked), so they are safe to alias and to
			// de-duplicate.
			for _, p := range combined {
				if err := sc.deliver(q, p.Key, p.Value, true); err != nil {
					return err
				}
			}
			sc.combineBufs[q] = nil
		}
	}
	// Local batches become sorted runs here, on the map task's worker —
	// after a combiner pass they arrive already sorted (key-preserving
	// combiners keep Combine's sort order) and the stable sort degenerates
	// to a cheap verification pass.
	sortCmp := sc.x.rj.SortCmp
	for _, pairs := range sc.localBufs {
		engine.SortPairs(pairs, sortCmp)
	}
	// Batch admission: the whole flush reserves against the place's pool in
	// one transaction when it fits, one run at a time otherwise.
	if err := sc.x.installRuns(sc.ctx, sc.place, sc.src, sc.localBufs); err != nil {
		return err
	}
	sc.localBufs = nil

	for d, de := range sc.encoders {
		if err := sc.shipRemote(d, de); err != nil {
			return err
		}
	}
	sc.encoders = nil
	return nil
}

// shipRemote closes one destination's encoded stream, "ships" it, and
// decodes it at the destination into sorted runs.
func (sc *shuffleCollector) shipRemote(d int, de *destEncoder) error {
	// The pooled buffer returns to encodeBufPool on every exit path —
	// error returns must not bleed grown buffers out of the pool.
	defer func() {
		putEncodeBuf(de.buf)
		de.buf, de.enc = nil, nil
	}()
	e := sc.x.e
	if err := de.enc.Close(); err != nil {
		return err
	}
	// The wire in between: the runtime's transport carries the frame to
	// place d (a memory loopback on inproc; a round trip through d's worker
	// process on tcp) and returns the bytes as delivered there.
	payload, err := e.rt.ShipFrame(sc.place, d, de.buf.Bytes())
	if err != nil {
		return fmt.Errorf("m3r: shuffle ship to place %d: %w", d, err)
	}
	n := int64(len(payload))
	e.stats.Add(sim.RemoteBytes, n)
	e.stats.Add(sim.RemoteTransfers, 1)
	e.stats.Add(sim.DedupHits, int64(de.enc.DedupHits()))
	sc.ctx.IncrCounter(counters.TaskGroup, counters.RemoteShuffleBytes, n)
	sc.ctx.IncrCounter(counters.M3RGroup, counters.DedupHits, int64(de.enc.DedupHits()))
	if e.rt.RemoteTransport() {
		sc.ctx.IncrCounter(counters.M3RGroup, counters.NetFrames, 1)
		sc.ctx.IncrCounter(counters.M3RGroup, counters.NetBytes, n)
	}
	e.cost.ChargeNet(e.stats, n)

	// "Arrive" at place d: decode into fresh objects.
	dec := wio.NewDecoder(bytes.NewReader(payload))
	byPartition := make(map[int][]wio.Pair)
	for i := 0; i < de.n; i++ {
		qv, err := dec.DecodeUvarint()
		if err != nil {
			return fmt.Errorf("m3r: shuffle decode at place %d: %w", d, err)
		}
		pair, err := dec.DecodePair()
		if err != nil {
			return fmt.Errorf("m3r: shuffle decode at place %d: %w", d, err)
		}
		q := int(qv)
		byPartition[q] = append(byPartition[q], pair)
	}
	sortCmp := sc.x.rj.SortCmp
	for _, pairs := range byPartition {
		engine.SortPairs(pairs, sortCmp)
	}
	// Every partition in this frame lives at place d; admit the decoded
	// batch against d's pool in one transaction when it fits.
	return sc.x.installRuns(sc.ctx, d, sc.src, byPartition)
}

// abort releases the collector's pooled resources after a failed task:
// any encode buffers flush never shipped go back to the pool.
func (sc *shuffleCollector) abort() {
	for _, de := range sc.encoders {
		if de.buf != nil {
			putEncodeBuf(de.buf)
			de.buf, de.enc = nil, nil
		}
	}
	sc.encoders = nil
	sc.localBufs = nil
}

// mapOnlyCollector sends map output straight to the output format and the
// cache, for zero-reducer jobs (§5.3).
type mapOnlyCollector struct {
	x         *jobExec
	ctx       *engine.TaskContext
	taskID    string
	taskJob   *conf.JobConf
	immutable bool
	cacheW    *OutputWriter
	rw        formats.RecordWriter
}

func (x *jobExec) newMapOnlyCollector(a *mapAssignment, taskJob *conf.JobConf, ctx *engine.TaskContext) (*mapOnlyCollector, error) {
	moc := &mapOnlyCollector{
		x:         x,
		ctx:       ctx,
		taskID:    ctx.TaskID,
		taskJob:   taskJob,
		immutable: engine.MapTaskImmutable(x.rj, a.split),
	}
	outPath := x.job.OutputPath()
	if outPath == "" {
		return moc, nil
	}
	fileName := fmt.Sprintf("part-%05d", a.index)
	if x.cacheEnabled {
		w, err := x.e.cache.NewOutputWriter(a.place, dfs.Join(outPath, fileName), x.temp)
		if err != nil {
			return nil, err
		}
		moc.cacheW = w
	}
	if x.writeOutput {
		x.committer.SetupTask(taskJob, moc.taskID)
		outputFormat, err := x.rj.NewOutputFormat()
		if err != nil {
			moc.abort()
			return nil, err
		}
		rw, err := outputFormat.GetRecordWriter(taskJob, fileName)
		if err != nil {
			moc.abort()
			return nil, err
		}
		moc.rw = rw
	} else {
		ctx.IncrCounter(counters.M3RGroup, counters.TempOutputsElided, 1)
	}
	return moc, nil
}

// Collect implements the collector contract.
func (moc *mapOnlyCollector) Collect(key, value wio.Writable) error {
	if err := moc.x.lc.Err(); err != nil {
		return err
	}
	moc.ctx.Cells.MapOutputRecords.Increment(1)
	if moc.cacheW != nil {
		k, v := key, value
		if !moc.immutable {
			k, v = wio.MustClone(key), wio.MustClone(value)
			moc.x.e.stats.Add(sim.ClonedPairs, 1)
			moc.ctx.Cells.ClonedPairs.Increment(1)
		} else {
			moc.x.e.stats.Add(sim.AliasedPairs, 1)
			moc.ctx.Cells.AliasedPairs.Increment(1)
		}
		moc.cacheW.Append(wio.Pair{Key: k, Value: v})
	}
	if moc.rw != nil {
		return moc.rw.Write(key, value)
	}
	return nil
}

// close commits the task's output.
func (moc *mapOnlyCollector) close() error {
	if moc.rw != nil {
		if err := moc.rw.Close(); err != nil {
			return err
		}
		// A kill that lands before the task commit aborts instead (the
		// caller's deferred abort cleans up).
		if err := moc.x.lc.Err(); err != nil {
			return err
		}
		if err := moc.x.committer.CommitTask(moc.taskJob, moc.taskID); err != nil {
			return err
		}
	}
	if moc.cacheW != nil {
		return moc.cacheW.Close()
	}
	return nil
}

// abort discards the failed task's partial output: the record writer's
// uncommitted work directory and the partial cache entry, neither of which
// may stay visible to later jobs.
func (moc *mapOnlyCollector) abort() {
	if moc.rw != nil {
		moc.rw.Close()
		moc.x.committer.AbortTask(moc.taskJob, moc.taskID)
		moc.rw = nil
	}
	if moc.cacheW != nil {
		moc.cacheW.Abort()
		moc.cacheW = nil
	}
}
