package m3r

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"m3r/internal/engine"
	"m3r/internal/sim"
	"m3r/internal/spill"
)

// TestKillDuringSpillWrite blocks the spill worker mid-write, kills the job
// while spills are queued behind the blocked write, and checks the kill
// wins: the job returns ErrJobKilled, the in-flight write is allowed to
// finish (no torn run files), queued spills are cancelled, and streams,
// pooled buffers and scratch dirs all return to baseline.
func TestKillDuringSpillWrite(t *testing.T) {
	reached := make(chan struct{})
	release := make(chan struct{})
	var first atomic.Bool
	swapSpillWrite(t, func(path string, enc spill.EncodedRun) (int64, error) {
		// One spill worker runs per place: only the first write anywhere
		// blocks, so the kill lands with other spills queued behind it.
		if first.CompareAndSwap(false, true) {
			close(reached)
			<-release
		}
		return spill.WriteEncodedFile(path, enc)
	})

	e := newFaultEngine(t, 2)
	streamBase, bufBase := spill.OpenStreamCount(), encodeBufsOut.Load()
	dirBase := leftoverSpillDirs(t)

	lc := engine.NewJobLifecycle()
	errCh := make(chan error, 1)
	go func() {
		_, err := e.SubmitControlled(spillingJob("/out/killspill"), lc)
		errCh <- err
	}()
	select {
	case <-reached:
	case err := <-errCh:
		t.Fatalf("job finished before any spill write: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("spill worker never reached a write")
	}
	lc.Kill(engine.ErrJobKilled)
	close(release)

	var err error
	select {
	case err = <-errCh:
	case <-time.After(30 * time.Second):
		t.Fatal("killed job never terminated")
	}
	if !errors.Is(err, engine.ErrJobKilled) {
		t.Fatalf("job error = %v, want ErrJobKilled", err)
	}
	if got := e.Stats().Get(sim.JobsKilled); got != 1 {
		t.Errorf("jobs.killed = %d, want 1", got)
	}
	if got := spill.OpenStreamCount(); got != streamBase {
		t.Errorf("OpenStreamCount %d, baseline %d: leaked spill streams", got, streamBase)
	}
	if got := encodeBufsOut.Load(); got != bufBase {
		t.Errorf("encode buffers out %d, baseline %d: leaked pooled buffers", got, bufBase)
	}
	if got := leftoverSpillDirs(t); got != dirBase {
		t.Errorf("%d spill scratch dirs left behind (baseline %d)", got, dirBase)
	}
}
