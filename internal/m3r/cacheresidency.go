package m3r

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"m3r/internal/engine"
	"m3r/internal/kvstore"
	"m3r/internal/sim"
	"m3r/internal/spill"
)

// This file implements the budgeted, tiered inter-job cache: the engine's
// key/value cache (paper §3.2) is the one large memory consumer that lives
// across jobs, so with a cache budget configured every committed cache
// block reserves its byte footprint against the place's engine.BudgetPool
// under the cache-scoped tag — coexisting with the shuffle's job-tagged
// reservations when the engine is pooled. Under contention, cold entries
// spill largest-first to disk in the compressed self-describing spill
// format (reusing the shuffle's policy shape, see residency.go), and a
// spilled entry readmits transparently the next time a job reads it.
// Iterative sequences — PageRank, matvec, SysML loops — thus run
// arbitrarily long at a fixed memory ceiling with byte-identical output.

// cacheTag is the pool tag cache reservations are charged under. Unlike
// job tags it is engine-lifetime: entries outlive the jobs that wrote them,
// so the tag's held bytes drain only as entries are dropped, spilled, or
// the engine closes — never at a job boundary.
const cacheTag = "m3r-cache"

// cacheGovernor is the kvstore.Residency implementation behind the budgeted
// cache: it owns the admission/eviction/readmit policy and the cache spill
// directory, and keeps the ledger invariant that the cache tag's held bytes
// always equal the sum of the resident accounted blocks' sizes.
type cacheGovernor struct {
	stats   *sim.Stats
	store   *kvstore.Store
	budgets []*engine.JobBudget // per place, tag=cacheTag
	codec   spill.Codec

	dirMu sync.Mutex
	dir   string
	seq   atomic.Int64

	// mu guards the eviction index. idx holds one entry per resident
	// accounted block; claimed holds blocks an in-flight eviction has
	// taken out of idx (so concurrent contenders cannot evict a block
	// twice, and a concurrent free can hand its release duty over).
	mu      sync.Mutex
	order   int64
	idx     []map[kvstore.BlockInfo]*cacheResident
	claimed map[kvstore.BlockInfo]*cacheResident

	resident   atomic.Int64 // bytes of resident accounted blocks
	spilled    atomic.Int64 // entries moved to disk (evictions + overflow)
	readmitted atomic.Int64 // entries promoted back to memory
}

// cacheResident is one resident accounted block in the eviction index.
type cacheResident struct {
	info  kvstore.BlockInfo
	size  int64
	order int64
	freed bool // block freed while claimed; the evictor owns the release
}

func newCacheGovernor(stats *sim.Stats, store *kvstore.Store, budgets []*engine.JobBudget, codec spill.Codec) *cacheGovernor {
	g := &cacheGovernor{
		stats:   stats,
		store:   store,
		budgets: budgets,
		codec:   codec,
		idx:     make([]map[kvstore.BlockInfo]*cacheResident, len(budgets)),
		claimed: make(map[kvstore.BlockInfo]*cacheResident),
	}
	for p := range g.idx {
		g.idx[p] = make(map[kvstore.BlockInfo]*cacheResident)
	}
	return g
}

// BlockCommitted implements kvstore.Residency: pool admission for a freshly
// committed cache block. Under contention the largest-first policy spills
// cold resident entries strictly larger than the newcomer; a block the pool
// still cannot admit goes to disk itself, cold from birth.
func (g *cacheGovernor) BlockCommitted(info kvstore.BlockInfo, size int64) error {
	jb := g.budgets[info.Place]
	admitted, _, err := jb.ReserveEvicting(size, func(min int64) (int64, error) {
		return g.evictOne(info.Place, min)
	})
	if err != nil {
		return err
	}
	if admitted {
		g.register(info, size)
		return nil
	}
	path, err := g.spillPath()
	if err != nil {
		return err
	}
	n, err := g.store.SpillBlock(info, path, g.codec)
	if err != nil {
		return err
	}
	if n > 0 {
		g.noteSpilled()
	}
	return nil
}

// BlockFreed implements kvstore.Residency: a block left the store. Resident
// accounted blocks hand their reservation back; a block claimed by an
// in-flight eviction defers the release to the evictor (exactly one owner
// per reservation, so the ledger can never double-release).
func (g *cacheGovernor) BlockFreed(info kvstore.BlockInfo, size int64, wasResident bool) {
	if !wasResident {
		return // spilled entries hold no reservation
	}
	g.mu.Lock()
	if g.idx == nil {
		g.mu.Unlock()
		return
	}
	if e, ok := g.idx[info.Place][info]; ok {
		delete(g.idx[info.Place], info)
		g.mu.Unlock()
		g.budgets[info.Place].Release(e.size)
		g.noteResident(-e.size)
		return
	}
	if e, ok := g.claimed[info]; ok {
		e.freed = true
	}
	// Neither indexed nor claimed: the eviction that claimed it already
	// settled the reservation (or the block was never admitted).
	g.mu.Unlock()
}

// RequestReadmit implements kvstore.Residency: a spilled block may re-enter
// memory when its bytes fit the current budget — a plain reservation, like
// the shuffle's readmit: a read never evicts other entries to make room.
func (g *cacheGovernor) RequestReadmit(info kvstore.BlockInfo, size int64) bool {
	return g.budgets[info.Place].Reserve(size)
}

// ReadmitCommit implements kvstore.Residency: the block is resident again.
func (g *cacheGovernor) ReadmitCommit(info kvstore.BlockInfo, size int64) {
	g.register(info, size)
	g.readmitted.Add(1)
	g.stats.Add(sim.CacheReadmittedEntries, 1)
}

// ReadmitAbort implements kvstore.Residency: the reinstatement did not
// happen; return the transferred reservation.
func (g *cacheGovernor) ReadmitAbort(info kvstore.BlockInfo, size int64) {
	g.budgets[info.Place].Release(size)
}

// register indexes a newly resident accounted block as an eviction
// candidate.
func (g *cacheGovernor) register(info kvstore.BlockInfo, size int64) {
	g.mu.Lock()
	if g.idx == nil { // closed underneath a straggling commit
		g.mu.Unlock()
		return
	}
	g.order++
	g.idx[info.Place][info] = &cacheResident{info: info, size: size, order: g.order}
	g.mu.Unlock()
	g.noteResident(size)
}

// evictOne is the eviction callback behind the pool's admission loop:
// claim the largest resident cache block at place strictly larger than min,
// spill it, and return the reservation size it frees (0 when no block
// qualifies). As with the shuffle's evictLargest, the reservation is NOT
// released here — the pool folds the release into the retry atomically —
// and ties break toward the earlier admission so the choice is a
// deterministic function of arrival order, never of map iteration.
func (g *cacheGovernor) evictOne(place int, min int64) (int64, error) {
	g.mu.Lock()
	if g.idx == nil {
		g.mu.Unlock()
		return 0, nil
	}
	var best *cacheResident
	for _, e := range g.idx[place] {
		if e.size <= min {
			continue
		}
		if best == nil || e.size > best.size || (e.size == best.size && e.order < best.order) {
			best = e
		}
	}
	if best == nil {
		g.mu.Unlock()
		return 0, nil
	}
	delete(g.idx[place], best.info)
	g.claimed[best.info] = best
	g.mu.Unlock()

	path, err := g.spillPath()
	var n int64
	if err == nil {
		n, err = g.store.SpillBlock(best.info, path, g.codec)
	}

	g.mu.Lock()
	if g.claimed != nil {
		delete(g.claimed, best.info)
	}
	freed := best.freed
	if err != nil && !freed {
		// Spill write failed and the block is still resident: restore it as
		// a candidate and surface the error.
		if g.idx != nil {
			g.idx[place][best.info] = best
		}
		g.mu.Unlock()
		return 0, err
	}
	g.mu.Unlock()
	g.noteResident(-best.size)
	if err != nil {
		// The block was freed while the spill write failed: the free
		// deferred the release to us, and there is nothing left to evict.
		g.budgets[place].Release(best.size)
		return 0, err
	}
	if n > 0 {
		g.noteSpilled()
	}
	// n == 0 means the block was freed concurrently: its reservation is
	// still held (the free deferred it here) and funds the retry the same
	// way an eviction's would.
	return best.size, nil
}

func (g *cacheGovernor) noteResident(delta int64) {
	g.resident.Add(delta)
	g.stats.Add(sim.CacheResidentBytes, delta)
}

func (g *cacheGovernor) noteSpilled() {
	g.spilled.Add(1)
	g.stats.Add(sim.CacheSpilledEntries, 1)
}

// spillPath returns a fresh file path for one spilled cache block, creating
// the engine's cache spill directory on first use.
func (g *cacheGovernor) spillPath() (string, error) {
	g.dirMu.Lock()
	defer g.dirMu.Unlock()
	if g.dir == "" {
		d, err := os.MkdirTemp("", "m3r-cache-")
		if err != nil {
			return "", err
		}
		g.dir = d
	}
	return filepath.Join(g.dir, fmt.Sprintf("blk_%06d", g.seq.Add(1))), nil
}

// heldBytes sums the cache tag's pool reservations across places. At
// quiescence it equals residentBytes — the ledger invariant the
// accounting tests pin after every job, success and failure alike.
func (g *cacheGovernor) heldBytes() int64 {
	var held int64
	for _, jb := range g.budgets {
		held += jb.Held()
	}
	return held
}

func (g *cacheGovernor) residentBytes() int64   { return g.resident.Load() }
func (g *cacheGovernor) spilledCount() int64    { return g.spilled.Load() }
func (g *cacheGovernor) readmittedCount() int64 { return g.readmitted.Load() }

// close tears the governor down at engine close: every cache reservation
// drains from the pools and the spill directory goes. Entries' in-memory
// data dies with the store; nothing readmits after this.
func (g *cacheGovernor) close() {
	for _, jb := range g.budgets {
		jb.Drain()
	}
	g.mu.Lock()
	g.idx = nil
	g.claimed = nil
	g.mu.Unlock()
	g.dirMu.Lock()
	if g.dir != "" {
		os.RemoveAll(g.dir)
		g.dir = ""
	}
	g.dirMu.Unlock()
}
