package m3r

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"m3r/internal/conf"
	"m3r/internal/counters"
	"m3r/internal/dfs"
	"m3r/internal/engine"
	"m3r/internal/formats"
	"m3r/internal/sim"
	"m3r/internal/spill"
	"m3r/internal/wio"
	"m3r/internal/x10"
)

// Options configures an M3R engine instance.
type Options struct {
	// Backing is the filesystem under the cache (normally the simulated
	// HDFS, but M3R is filesystem-agnostic, §1). Required.
	Backing dfs.FileSystem
	// Places is the number of long-lived worker processes (default 1).
	Places int
	// WorkersPerPlace bounds in-place task concurrency (default 2; the
	// paper used 8 worker threads on 8-core nodes).
	WorkersPerPlace int
	// Fallback, when set, receives jobs that request the stock Hadoop
	// engine via conf.KeyForceHadoop (§5.3 integrated mode).
	Fallback engine.Engine
	// ShuffleBudgetBytes, when positive, gives the engine a per-place
	// shuffle memory pool (conf.KeyM3REngineShuffleBudget) shared by every
	// job of the engine's sequence: concurrent server-mode jobs reserve
	// from — and contend for — this one pool instead of each claiming a
	// full per-place budget, with the largest-first spill policy arbitrating
	// overflow. Zero falls back to the M3R_ENGINE_SHUFFLE_BUDGET_BYTES
	// environment default; negative forces no pool even when the
	// environment sets one.
	ShuffleBudgetBytes int64
	// CacheBudgetBytes, when positive, puts the inter-job key/value cache
	// under per-place pool accounting (conf.KeyM3RCacheBudget): committed
	// cache blocks reserve their byte footprint under a cache-scoped tag —
	// within the engine's shuffle pool when one is configured, else in
	// private per-place cache pools — and under contention cold entries
	// spill largest-first to disk, readmitting transparently on next
	// access. Zero falls back to the M3R_CACHE_BUDGET_BYTES environment
	// default; negative forces the unbounded cache even when the
	// environment sets one. Job output is byte-identical at every setting.
	CacheBudgetBytes int64
	// Transport moves cross-place shuffle frames; nil means the in-process
	// loopback backend. The engine's runtime takes ownership: Close closes
	// it.
	Transport x10.Transport
	// Stats and Cost may be nil.
	Stats *sim.Stats
	Cost  *sim.CostModel
}

// Engine is the M3R engine: one instance is associated with a fixed set of
// places and runs all jobs of the sequence submitted to it, keeping the
// key/value cache alive in between (§3.2). It does not recover from task
// failure — a failed task fails the job, the paper's "no resilience"
// design point.
type Engine struct {
	rt       *x10.Runtime
	cache    *Cache
	cfs      *CachingFileSystem
	fsID     string
	stats    *sim.Stats
	cost     *sim.CostModel
	fallback engine.Engine

	// pools is the engine-scoped shuffle memory: one engine-lifetime
	// BudgetPool per place (Options.ShuffleBudgetBytes /
	// conf.KeyM3REngineShuffleBudget), shared by every job of the sequence
	// through job-tagged reservations. Nil when the engine is unpooled —
	// jobs then account against private per-job pools, the pre-pool
	// behavior.
	pools []*engine.BudgetPool

	// cacheGov, when non-nil, is the budgeted cache's admission/eviction
	// governor (Options.CacheBudgetBytes / conf.KeyM3RCacheBudget),
	// installed as the kvstore's residency hook. Nil means the unbounded
	// in-memory cache, the paper's design point.
	cacheGov *cacheGovernor

	mu     sync.Mutex
	jobSeq int
	closed bool
}

// New creates an M3R engine over opts.Places simulated places.
func New(opts Options) (*Engine, error) {
	if opts.Backing == nil {
		return nil, fmt.Errorf("m3r: Options.Backing is required")
	}
	cost := opts.Cost
	if cost == nil {
		cost = sim.Zero()
	}
	rt := x10.NewRuntime(x10.Options{
		Places:          opts.Places,
		WorkersPerPlace: opts.WorkersPerPlace,
		Transport:       opts.Transport,
		Stats:           opts.Stats,
		Cost:            cost,
	})
	cache := NewCache(rt)
	cfs := NewCachingFileSystem(opts.Backing, cache, rt)
	var pools []*engine.BudgetPool
	if b := poolBudgetBytes(opts.ShuffleBudgetBytes); b > 0 {
		pools = make([]*engine.BudgetPool, rt.NumPlaces())
		for p := range pools {
			pools[p] = engine.NewBudgetPool(b)
		}
	}
	var gov *cacheGovernor
	if b := cacheBudgetBytes(opts.CacheBudgetBytes); b > 0 {
		// Cache entries spill in the shared spill record format; the codec
		// follows the engine-wide environment default (the per-job key
		// cannot apply: entries outlive jobs).
		codec, err := spill.ParseCodec(os.Getenv("M3R_SPILL_CODEC"))
		if err != nil {
			rt.Close()
			return nil, fmt.Errorf("m3r: cache budget: %w", err)
		}
		budgets := make([]*engine.JobBudget, rt.NumPlaces())
		for p := range budgets {
			if pools != nil {
				// Pooled engine: cache reservations share the place's pool
				// with the jobs' shuffle tags, capped at the cache budget.
				budgets[p] = pools[p].Job(cacheTag, b)
			} else {
				budgets[p] = engine.NewBudgetPool(b).Job(cacheTag, 0)
			}
		}
		gov = newCacheGovernor(opts.Stats, cache.Store(), budgets, codec)
		cache.Store().SetResidency(gov)
	}
	return &Engine{
		rt:       rt,
		cache:    cache,
		cfs:      cfs,
		fsID:     dfs.RegisterInstance(cfs),
		stats:    opts.Stats,
		cost:     cost,
		fallback: opts.Fallback,
		pools:    pools,
		cacheGov: gov,
	}, nil
}

// poolBudgetBytes resolves the engine pool size: an explicit option wins
// (negative = no pool, even under the env default), otherwise the
// M3R_ENGINE_SHUFFLE_BUDGET_BYTES environment default applies — how CI's
// tight-budget leg gives every test engine a contended pool without every
// test knowing about pooling.
func poolBudgetBytes(opt int64) int64 {
	if opt != 0 {
		return opt
	}
	if v := os.Getenv("M3R_ENGINE_SHUFFLE_BUDGET_BYTES"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// cacheBudgetBytes resolves the per-place cache budget the same way: an
// explicit option wins (negative = unbounded, even under the env default),
// otherwise the M3R_CACHE_BUDGET_BYTES environment default applies — how
// CI's tight-cache leg drives whole example suites through the cache
// spill/readmit tier without every test knowing about the budget.
func cacheBudgetBytes(opt int64) int64 {
	if opt != 0 {
		return opt
	}
	if v := os.Getenv("M3R_CACHE_BUDGET_BYTES"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 0
}

// Name implements engine.Engine.
func (e *Engine) Name() string { return "m3r" }

// FileSystem implements engine.Engine: jobs see the caching filesystem.
func (e *Engine) FileSystem() string { return e.fsID }

// CachingFS returns the engine's caching filesystem (clients use it for
// CacheFS interactions, §4.2).
func (e *Engine) CachingFS() *CachingFileSystem { return e.cfs }

// Cache returns the engine's key/value cache.
func (e *Engine) Cache() *Cache { return e.cache }

// Runtime returns the engine's place runtime.
func (e *Engine) Runtime() *x10.Runtime { return e.rt }

// Stats returns the engine's statistics sink.
func (e *Engine) Stats() *sim.Stats { return e.stats }

// ShufflePoolLimitBytes returns the engine pool's per-place limit, 0 when
// the engine is unpooled.
func (e *Engine) ShufflePoolLimitBytes() int64 {
	if e.pools == nil {
		return 0
	}
	return e.pools[0].Limit()
}

// ShufflePoolHeldBytes sums the bytes currently reserved across the engine
// pool's places (0 when unpooled) by jobs — the engine-lifetime cache tag's
// reservations are excluded, since cache entries legitimately stay resident
// across job boundaries. Between jobs of a healthy sequence it is exactly
// zero: every job's cleanup drains its reservations, which the server-mode
// equivalence tests pin.
func (e *Engine) ShufflePoolHeldBytes() int64 {
	var held int64
	for _, p := range e.pools {
		held += p.Held() - p.JobHeld(cacheTag)
	}
	return held
}

// CachePoolHeldBytes sums the bytes the cache tag holds reserved across
// places (0 when the cache is unbudgeted). At quiescence it equals
// CacheResidentBytes — the ledger invariant the accounting tests pin after
// every job, success and failure alike — and it drains to zero as entries
// are dropped or the engine closes.
func (e *Engine) CachePoolHeldBytes() int64 {
	if e.cacheGov == nil {
		return 0
	}
	return e.cacheGov.heldBytes()
}

// CacheResidentBytes returns the bytes of cache blocks currently resident
// under the cache budget (0 when unbudgeted).
func (e *Engine) CacheResidentBytes() int64 {
	if e.cacheGov == nil {
		return 0
	}
	return e.cacheGov.residentBytes()
}

// CacheSpilledEntries returns the cumulative count of cache blocks the
// budget moved to disk (evictions and commit-time overflow).
func (e *Engine) CacheSpilledEntries() int64 {
	if e.cacheGov == nil {
		return 0
	}
	return e.cacheGov.spilledCount()
}

// CacheReadmittedEntries returns the cumulative count of spilled cache
// blocks promoted back to memory by a later read.
func (e *Engine) CacheReadmittedEntries() int64 {
	if e.cacheGov == nil {
		return 0
	}
	return e.cacheGov.readmittedCount()
}

// Close implements engine.Engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		if e.cacheGov != nil {
			// Detach the hook first so nothing spills or readmits during
			// teardown, then drain every cache reservation and remove the
			// cache spill directory.
			e.cache.Store().SetResidency(nil)
			e.cacheGov.close()
		}
		dfs.DropInstance(e.fsID)
		return e.rt.Close()
	}
	return nil
}

// PlaceOfPartition is the partition stability guarantee (§3.2.2.2): for a
// given number of places, the mapping from partitions to places is
// deterministic and identical across all jobs of the sequence.
func (e *Engine) PlaceOfPartition(partition int) int {
	return partition % e.rt.NumPlaces()
}

// Submit implements engine.Engine.
func (e *Engine) Submit(userJob *conf.JobConf) (*engine.Report, error) {
	return e.SubmitControlled(userJob, nil)
}

// SubmitControlled implements engine.LifecycleSubmitter: it runs the job
// under lc, so the caller (server mode's kill RPC, Shutdown's grace drain)
// can cancel it while it runs. A nil lc gets a private lifecycle — Submit
// is exactly that — which still honours the job's deadline key.
func (e *Engine) SubmitControlled(userJob *conf.JobConf, lc *engine.JobLifecycle) (*engine.Report, error) {
	if userJob.GetBool(conf.KeyForceHadoop, false) && e.fallback != nil {
		return submitTo(e.fallback, userJob, lc)
	}
	start := time.Now()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, fmt.Errorf("m3r: engine is closed")
	}
	e.jobSeq++
	jobID := fmt.Sprintf("job_m3r_%04d", e.jobSeq)
	e.mu.Unlock()

	if lc == nil {
		lc = engine.NewJobLifecycle()
	}
	defer lc.Stop()

	job := userJob.CloneJob()
	job.Set(conf.KeyFSInstance, e.fsID)
	lc.ApplyDeadlineConf(job)
	if files := job.Get(conf.KeyDistributedCacheFiles); files != "" {
		// In-memory places read the distributed cache straight from the
		// filesystem; expose the standard task-side key.
		job.Set(conf.KeyDistributedCacheLocalFiles, files)
	}

	rj, err := engine.Resolve(job)
	if err != nil {
		return nil, err
	}
	// §4.1: swap Hadoop's reusing default runner for the fresh-allocating,
	// ImmutableOutput-marked one.
	rj.SubstituteImmutableRunner()

	outputFormat, err := rj.NewOutputFormat()
	if err != nil {
		return nil, err
	}
	if err := outputFormat.CheckOutputSpecs(job); err != nil {
		return nil, err
	}

	applyEnvDefaults(job)
	spillCodec, err := spill.ParseCodec(job.GetDefault(conf.KeyM3RSpillCodec, ""))
	if err != nil {
		return nil, err
	}
	x := &jobExec{
		e:             e,
		job:           job,
		rj:            rj,
		jobID:         jobID,
		lc:            lc,
		jc:            counters.New(),
		cacheEnabled:  job.GetBool(conf.KeyM3RCache, true),
		dedup:         job.GetBool(conf.KeyM3RDedup, true),
		shuffleBudget: job.GetInt64(conf.KeyM3RShuffleBudget, 0),
		readmit:       job.GetBool(conf.KeyM3RReadmit, false),
		codec:         spillCodec,
		mergeCfg:      engine.MergeConfigFromJob(job),
	}
	// A kill aborts an engaged staged merge's workers directly, not only
	// through its consumer.
	x.mergeCfg.Lifecycle = lc
	defer x.cleanup()
	// Budgeted-cache tiering counters are per-job deltas of the governor's
	// engine-lifetime totals; snapshot before planning (a cache lookup can
	// already readmit a spilled entry).
	var cacheSpilled0, cacheReadmitted0 int64
	if e.cacheGov != nil {
		cacheSpilled0 = e.cacheGov.spilledCount()
		cacheReadmitted0 = e.cacheGov.readmittedCount()
	}
	// Budget admission: on a pooled engine every job is budgeted (the
	// per-job key, when set, caps the job within the pool; an explicit
	// non-positive value opts the job out entirely). On an unpooled engine
	// a positive per-job key gets a private single-job pool: the same
	// byte-identical output as the pre-pool per-job accountants, but with
	// the largest-first policy active — a tight single job evicts its own
	// larger resident runs (and counts POOL_CONTENDED_BYTES) rather than
	// always spilling the newcomer.
	capSet := job.Has(conf.KeyM3RShuffleBudget)
	if (capSet && x.shuffleBudget > 0) || (!capSet && e.pools != nil) {
		x.budgets = make([]*engine.JobBudget, e.rt.NumPlaces())
		x.resident = make([]*residentSet, e.rt.NumPlaces())
		for p := range x.budgets {
			if e.pools != nil {
				x.budgets[p] = e.pools[p].Job(jobID, x.shuffleBudget)
			} else {
				x.budgets[p] = engine.NewBudgetPool(x.shuffleBudget).Job(jobID, 0)
			}
			x.resident[p] = newResidentSet()
		}
		if depth := job.GetInt(conf.KeyM3RSpillQueue, 0); depth > 0 {
			x.spillQ = make([]*spillQueue, e.rt.NumPlaces())
			for p := range x.spillQ {
				x.spillQ[p] = newSpillQueue(x, p, depth)
			}
		}
	}
	outPath := job.OutputPath()
	x.temp = outPath != "" && job.IsTemporaryOutput(outPath)
	x.writeOutput = outPath != "" && !x.temp
	if x.writeOutput {
		x.committer = formats.NewFileOutputCommitter(e.cfs)
		if err := x.committer.SetupJob(job); err != nil {
			return nil, err
		}
	}

	splits, err := rj.InputFormat.GetSplits(job, e.rt.NumPlaces()*2)
	if err != nil {
		return nil, err
	}
	assignments, err := x.plan(splits)
	if err != nil {
		return nil, err
	}

	for i := 0; i < rj.NumReducers; i++ {
		x.parts = append(x.parts, &partitionInput{x: x, place: e.PlaceOfPartition(i)})
	}

	err = x.run(assignments)
	if err == nil {
		// A kill that lands between the last task and the job commit is
		// still a kill: commit is the one irrevocable step, so it gets the
		// final check.
		err = lc.Err()
	}
	if err != nil {
		// A failed job must not leave the committer's _temporary scratch
		// space behind on the (caching) filesystem.
		if x.writeOutput {
			x.committer.AbortJob(job)
		}
		// Reduce tasks that finished before the failure already committed
		// their output files into the cache; the job's output never becomes
		// visible, so those entries must not either. Dropping them also
		// drains their cache-pool reservations — a failed job must not
		// bleed cache budget any more than shuffle budget. (The failover
		// path below drops again before deleting the on-disk droppings;
		// Drop is idempotent.)
		if outPath != "" && x.cacheEnabled {
			e.cache.Drop(outPath)
		}
		if cause := lc.Err(); cause != nil {
			// Cancelled: tasks unwinding concurrently may surface secondary
			// errors (merge cancelled, collector aborts); the verdict is the
			// cancellation cause, and errors.Is against ErrJobKilled /
			// ErrDeadlineExceeded must hold for the caller.
			err = cause
			switch {
			case errors.Is(cause, engine.ErrDeadlineExceeded):
				e.stats.Add(sim.JobsDeadlineExceeded, 1)
			default:
				e.stats.Add(sim.JobsKilled, 1)
			}
			return nil, fmt.Errorf("m3r: %s: %w", jobID, err)
		}
		err = fmt.Errorf("m3r: %s: %w", jobID, err)
		if job.GetBool(conf.KeyM3RFailover, false) && e.fallback != nil {
			// §5.3 integrated-mode resilience: M3R itself does not recover
			// from task failure, but the job can be rerun on the resilient
			// engine. Roll this attempt fully back first — drain the spill
			// pipeline and pool reservations now (cleanup is idempotent;
			// the deferred call becomes a no-op) and drop whatever output
			// this attempt committed into the cache, so the fallback run's
			// real files are not shadowed by stale cache entries.
			x.cleanup()
			if outPath != "" {
				e.cache.Drop(outPath)
				// CheckOutputSpecs proved the output path did not exist when
				// this job started, so whatever is there now is this failed
				// attempt's droppings — remove it or the fallback engine's
				// own output check rejects the rerun.
				e.cfs.Delete(dfs.CleanPath(outPath), true)
			}
			return e.failover(userJob, lc, err)
		}
		return nil, err
	}
	if x.writeOutput {
		if err := x.committer.CommitJob(job); err != nil {
			x.committer.AbortJob(job)
			return nil, err
		}
	}
	if e.cacheGov != nil {
		x.jc.Find(counters.M3RGroup, counters.CacheResidentBytes).SetValue(e.cacheGov.residentBytes())
		x.jc.Find(counters.M3RGroup, counters.CacheSpilledEntries).SetValue(e.cacheGov.spilledCount() - cacheSpilled0)
		x.jc.Find(counters.M3RGroup, counters.CacheReadmittedEntries).SetValue(e.cacheGov.readmittedCount() - cacheReadmitted0)
	}
	engine.NotifyJobEnd(job, jobID)
	return &engine.Report{
		JobID:    jobID,
		JobName:  job.JobName(),
		Engine:   e.Name(),
		Queue:    job.GetDefault(conf.KeyJobQueueName, "default"),
		Counters: x.jc,
		Wall:     time.Since(start),
	}, nil
}

// submitTo forwards a job to another engine, preserving the caller's kill
// handle when that engine supports one.
func submitTo(eng engine.Engine, job *conf.JobConf, lc *engine.JobLifecycle) (*engine.Report, error) {
	if ls, ok := eng.(engine.LifecycleSubmitter); ok {
		return ls.SubmitControlled(job, lc)
	}
	return eng.Submit(job)
}

// failover reruns a failed job on the fallback engine (m3r.job.failover).
// The caller has already rolled this attempt back. The fallback run stays
// under the same lifecycle, so a kill still reaches it; its report gains
// FAILOVER_JOBS so the rerun is visible to the submitter.
func (e *Engine) failover(userJob *conf.JobConf, lc *engine.JobLifecycle, m3rErr error) (*engine.Report, error) {
	e.stats.Add(sim.FailoverJobs, 1)
	rep, err := submitTo(e.fallback, userJob, lc)
	if err != nil {
		// Both engines failed; the fallback's error wraps the original so
		// neither verdict is lost.
		return nil, fmt.Errorf("%w (after failover: %v)", err, m3rErr)
	}
	rep.Counters.Incr(counters.JobGroup, counters.FailoverJobs, 1)
	return rep, nil
}

// jobExec is the state of one executing job.
type jobExec struct {
	e            *Engine
	job          *conf.JobConf
	rj           *engine.ResolvedJob
	jobID        string
	lc           *engine.JobLifecycle
	committer    *formats.FileOutputCommitter
	jc           *counters.Counters
	parts        []*partitionInput
	temp         bool
	writeOutput  bool
	cacheEnabled bool
	dedup        bool
	cmu          sync.Mutex

	// Shuffle memory lifecycle (conf.KeyM3RShuffleBudget / KeyM3RSpillQueue
	// / KeyM3RReadmit, over the engine pool of
	// conf.KeyM3REngineShuffleBudget when one is configured): when the job
	// is budgeted, each place accounts its resident shuffle runs against
	// budgets[place] — the job's tagged view of the place's pool — and runs
	// that cannot be admitted spill to disk in the shared spill record
	// format (internal/spill), re-entering the merge through stream-backed
	// leaves. Under contention the largest-first policy may instead
	// re-spill a larger cold resident run (tracked per place in resident)
	// to keep the smaller newcomer in memory. With a queue depth configured
	// the spill writes run on per-place worker goroutines (spillQ),
	// overlapping disk with mapping; the reservations release incrementally
	// as reduce tasks drain resident runs, and — with readmit — freed
	// budget promotes spilled runs back to memory at merge open. Unbudgeted
	// jobs (no pool and no positive per-job budget, or an explicit
	// non-positive per-job budget) skip all accounting: the paper's pure
	// in-memory design point.
	shuffleBudget int64
	readmit       bool
	codec         spill.Codec // block compression for spilled runs (conf.KeyM3RSpillCodec)
	budgets       []*engine.JobBudget
	resident      []*residentSet
	spillQ        []*spillQueue
	spillMu       sync.Mutex
	spillDir      string
	spillSeq      atomic.Int64

	// Staged parallel reduce-side merge (conf.KeyMergeParallelism /
	// conf.KeyMergeMinRuns): partitions with enough runs merge their run
	// set through concurrent subset mergers instead of one goroutine.
	mergeCfg engine.MergeConfig
}

// applyEnvDefaults fills the shuffle-lifecycle knobs from the environment
// when the job leaves them unset. CI's tight-budget leg drives the whole
// suite through the spill pipeline this way (M3R_SHUFFLE_BUDGET_BYTES=4096)
// without every test knowing about budgets; a job that sets a key
// explicitly — including an explicit 0 for "unlimited" — always wins.
func applyEnvDefaults(job *conf.JobConf) {
	for key, env := range map[string]string{
		conf.KeyM3RShuffleBudget: "M3R_SHUFFLE_BUDGET_BYTES",
		conf.KeyM3RSpillQueue:    "M3R_SHUFFLE_SPILL_QUEUE",
		conf.KeyM3RReadmit:       "M3R_SHUFFLE_READMIT",
		conf.KeyM3RSpillCodec:    "M3R_SPILL_CODEC",
	} {
		if !job.Has(key) {
			if v := os.Getenv(env); v != "" {
				job.Set(key, v)
			}
		}
	}
}

// spillPath returns a fresh file path for one spilled run, creating the
// job's spill directory on first use.
func (x *jobExec) spillPath() (string, error) {
	x.spillMu.Lock()
	defer x.spillMu.Unlock()
	if x.spillDir == "" {
		d, err := os.MkdirTemp("", "m3r-spill-"+x.jobID+"-")
		if err != nil {
			return "", err
		}
		x.spillDir = d
	}
	return filepath.Join(x.spillDir, fmt.Sprintf("run_%06d", x.spillSeq.Add(1))), nil
}

// cleanup tears the spill pipeline down at job end (success or failure):
// every spill worker is drained first — no goroutine outlives the job, and
// no queued write can race the directory removal — then the job's budget
// reservations return to the pool, then the spill directory goes. The
// budget drain is the pool's end-of-job guarantee: a job that failed
// mid-shuffle (installed runs whose reducers never ran) must still hand
// every byte back, or a long-lived engine's shared pool would bleed
// capacity on every failure. On the success path the releasing readers
// already returned everything and both drains are no-ops. All task
// goroutines are joined before Submit's deferred cleanup runs, so no
// release can race the drain.
func (x *jobExec) cleanup() {
	for _, q := range x.spillQ {
		q.drain() // a worker error already surfaced through the job
	}
	for _, jb := range x.budgets {
		jb.Drain()
	}
	x.cleanupSpill()
}

// cleanupSpill removes every spilled run at job end (success or failure).
func (x *jobExec) cleanupSpill() {
	x.spillMu.Lock()
	defer x.spillMu.Unlock()
	if x.spillDir != "" {
		os.RemoveAll(x.spillDir)
		x.spillDir = ""
	}
}

// noteSpillQueueDepth records the deepest spill-queue backlog any place saw
// (SPILL_QUEUE_DEPTH): how far map flush ran ahead of the disk.
func (x *jobExec) noteSpillQueueDepth(hw int64) {
	x.cmu.Lock()
	c := x.jc.Find(counters.M3RGroup, counters.SpillQueueDepth)
	if hw > c.Value() {
		c.SetValue(hw)
	}
	x.cmu.Unlock()
}

func (x *jobExec) mergeCounters(ctx *engine.TaskContext) {
	x.cmu.Lock()
	x.jc.MergeFrom(ctx.Counters)
	x.cmu.Unlock()
}

// mapAssignment is one planned map task.
type mapAssignment struct {
	index  int
	split  formats.InputSplit
	place  int
	cached []CachedRange
	hit    bool
}

// plan assigns every split to a place: cache blocks pin cached splits
// (§3.2.1), PlacedSplits pin to their partition's stable place (§4.3),
// HDFS locality pins file splits, and everything else round-robins. A
// corrupt cache entry (blockPairs) fails the plan loudly instead of
// quietly dropping pairs from a cached split.
func (x *jobExec) plan(splits []formats.InputSplit) ([]*mapAssignment, error) {
	e := x.e
	P := e.rt.NumPlaces()
	rr := 0
	out := make([]*mapAssignment, 0, len(splits))
	for i, s := range splits {
		a := &mapAssignment{index: i, split: s}
		out = append(out, a)
		if x.cacheEnabled {
			if name, ok := formats.SplitName(s); ok {
				ranges, hit, err := e.cache.LookupSplit(name, fileSplitViewOf(e.cfs, s))
				if err != nil {
					return nil, err
				}
				if hit && len(ranges) > 0 {
					a.cached, a.hit = ranges, true
					a.place = ranges[0].Block.Place
					continue
				}
			}
		}
		if ps, ok := s.(formats.PlacedSplit); ok && ps.Partition() >= 0 {
			a.place = e.PlaceOfPartition(ps.Partition())
			continue
		}
		placed := false
		for _, h := range s.Locations() {
			if p := e.rt.PlaceOfHost(h); p >= 0 {
				a.place = p
				placed = true
				break
			}
		}
		if !placed {
			a.place = rr % P
			rr++
		}
	}
	return out, nil
}

// fileSplitViewOf unwraps delegating splits down to a FileSplit and builds
// the cache's view of it.
func fileSplitViewOf(fs dfs.FileSystem, s formats.InputSplit) *fileSplitView {
	for {
		if d, ok := s.(formats.DelegatingSplit); ok {
			s = d.GetDelegate()
			continue
		}
		break
	}
	f, ok := s.(*formats.FileSplit)
	if !ok {
		return nil
	}
	v := &fileSplitView{path: dfs.CleanPath(f.Path), start: f.Start, length: f.Len}
	if st, err := fs.Stat(v.path); err == nil {
		v.wholeFile = f.Start == 0 && f.Len == st.Size
	}
	return v
}

// run executes the map phase, the global shuffle barrier, and the reduce
// phase across all places.
func (x *jobExec) run(assignments []*mapAssignment) error {
	e := x.e
	P := e.rt.NumPlaces()
	byPlace := make([][]*mapAssignment, P)
	for _, a := range assignments {
		byPlace[a.place] = append(byPlace[a.place], a)
	}
	team := x10.NewTeam(P)
	var mapFailed atomic.Bool
	fin := x10.NewFinish()
	for p := 0; p < P; p++ {
		p := p
		fin.Async(func() error {
			// Map phase at this place: every task occupies a worker slot.
			inner := x10.NewFinish()
			for _, a := range byPlace[p] {
				a := a
				inner.Async(func() error {
					var err error
					e.rt.At(p, func() { err = x.runMapTask(a) })
					return err
				})
			}
			mapErr := inner.Wait()
			if mapErr != nil {
				mapFailed.Store(true)
			}
			if x.rj.MapOnly {
				return mapErr
			}
			// §5.1: "No reducer is allowed to run until globally all
			// shuffle messages have been sent."
			//
			// A killed job wakes the wait early: every place shares the one
			// cancel source, so whoever is parked here leaves with the
			// cancellation cause instead of waiting for places that may be
			// stuck in long map tails. (The generation is then abandoned,
			// never reused — the job is tearing down.)
			if err := team.BarrierCancel(x.lc.Done(), x.lc.Err); err != nil {
				return err
			}
			if mapErr != nil {
				return mapErr
			}
			if mapFailed.Load() {
				return nil // another place failed; the job is already lost
			}
			if err := x.lc.Err(); err != nil {
				return err
			}
			// The barrier extends over the async spill pipeline: after it,
			// no map task anywhere can enqueue, so draining this place's
			// worker guarantees every overflow run bound for this place's
			// partitions is on disk and installed before a reducer opens
			// its merge — and a spill-worker failure fails the job here.
			if x.spillQ != nil {
				if err := x.spillQ[p].drain(); err != nil {
					return err
				}
				x.noteSpillQueueDepth(x.spillQ[p].highWater.Load())
			}
			// Past the barrier no map task can contend the budget, so the
			// largest-first policy has no more victims to pick: drop the
			// eviction index so it stops pinning detached runs' pairs for
			// the rest of the reduce phase.
			if x.resident != nil {
				x.resident[p].clear()
			}
			// Reduce phase: this place owns the partitions the stable
			// mapping assigns to it (§3.2.2.2).
			rinner := x10.NewFinish()
			for q := 0; q < x.rj.NumReducers; q++ {
				if e.PlaceOfPartition(q) != p {
					continue
				}
				q := q
				rinner.Async(func() error {
					var err error
					e.rt.At(p, func() { err = x.runReduceTask(q) })
					return err
				})
			}
			return rinner.Wait()
		})
	}
	return fin.Wait()
}

// runMapTask executes one map task at its assigned place.
func (x *jobExec) runMapTask(a *mapAssignment) (err error) {
	e := x.e
	if err := x.lc.Err(); err != nil {
		// The job is already cancelled: don't launch the task at all.
		return err
	}
	e.stats.Add(sim.TasksLaunched, 1)
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("map task %d panicked: %v\n%s", a.index, p, debug.Stack())
		}
	}()
	taskJob := x.job.CloneJob()
	// Place-aware output plumbing (MultipleOutputs side files through the
	// cache) homes blocks at the writing task's place.
	taskJob.Set(conf.KeyM3RTaskPlace, strconv.Itoa(a.place))
	taskJob.Set(conf.KeyTaskPartition, strconv.Itoa(a.index))
	taskID := fmt.Sprintf("attempt_%s_m_%06d_0", x.jobID, a.index)
	ctx := engine.NewTaskContext(taskJob, taskID, a.split)
	ctx.IncrCounter(counters.JobGroup, counters.TotalLaunchedMaps, 1)

	mr := x.rj.NewMapRun()
	mr.Configure(taskJob)

	var collector interface {
		Collect(k, v wio.Writable) error
	}
	var finish func() error
	var abort func()
	// The abort runs on every failure exit — error return or panic (the
	// recover above sees it after this defer) — so a failed task never
	// leaves partial output in the cache or pooled buffers adrift.
	done := false
	defer func() {
		if !done && abort != nil {
			abort()
		}
	}()
	if x.rj.MapOnly {
		moc, err := x.newMapOnlyCollector(a, taskJob, ctx)
		if err != nil {
			return err
		}
		collector, finish, abort = moc, moc.close, moc.abort
	} else {
		sc := x.newShuffleCollector(a, ctx)
		collector, finish, abort = sc, sc.flush, sc.abort
	}
	out := mapredCollector{collector}

	if err := x.feedMapTask(a, mr, out, ctx, taskJob); err != nil {
		return fmt.Errorf("map task %d: %w", a.index, err)
	}
	if err := finish(); err != nil {
		return fmt.Errorf("map task %d output: %w", a.index, err)
	}
	done = true
	x.mergeCounters(ctx)
	return nil
}

// mapredCollector adapts the minimal collector shape to mapred's interface.
type mapredCollector struct {
	c interface {
		Collect(k, v wio.Writable) error
	}
}

func (m mapredCollector) Collect(k, v wio.Writable) error { return m.c.Collect(k, v) }

// feedMapTask routes input into the mapper: cached pairs (aliased from the
// heap), a fresh read that populates the cache, or a plain streamed read
// for unnameable splits (§3.2.1, §4.2.1).
func (x *jobExec) feedMapTask(a *mapAssignment, mr engine.MapRun,
	out mapredCollector, ctx *engine.TaskContext, taskJob *conf.JobConf) error {
	e := x.e
	if a.hit {
		pairs, _, err := e.cache.ReadRanges(a.place, a.cached)
		if err != nil {
			return err
		}
		ctx.IncrCounter(counters.M3RGroup, counters.CacheHitSplits, 1)
		e.stats.Add(sim.CacheHits, 1)
		return runPairs(mr, pairs, out, ctx)
	}
	name, nameOK := formats.SplitName(a.split)
	if nameOK && x.cacheEnabled {
		reader, err := x.rj.InputFormat.GetRecordReader(a.split, taskJob)
		if err != nil {
			return err
		}
		pairs, err := materialize(reader)
		if cerr := reader.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if err := e.cache.PutSplit(a.place, name, pairs); err != nil {
			return err
		}
		ctx.IncrCounter(counters.M3RGroup, counters.CacheMissSplits, 1)
		e.stats.Add(sim.CacheMisses, 1)
		e.stats.Add(sim.CacheWrites, 1)
		return runPairs(mr, pairs, out, ctx)
	}
	// Unnameable split: stream it, bypassing the cache (§4.2.1).
	reader, err := x.rj.InputFormat.GetRecordReader(a.split, taskJob)
	if err != nil {
		return err
	}
	defer reader.Close()
	e.stats.Add(sim.CacheMisses, 1)
	return mr.Run(reader, out, ctx)
}

// runPairs feeds in-memory pairs to the map task, preferring the direct
// fast path.
func runPairs(mr engine.MapRun, pairs []wio.Pair, out mapredCollector, ctx *engine.TaskContext) error {
	if pr, ok := mr.(engine.PairsRunner); ok {
		return pr.RunPairs(pairs, out, ctx)
	}
	return fmt.Errorf("m3r: map runner %T cannot consume cached pairs", mr)
}

// pairScratchPool recycles the growth buffers materialize appends into, so
// steady-state job sequences stop paying the doubling-garbage of reading
// splits of similar size over and over.
var pairScratchPool = sync.Pool{
	New: func() any {
		s := make([]wio.Pair, 0, 1024)
		return &s
	},
}

// materialize reads a whole split with fresh holders per record, producing
// the key/value sequence the cache retains. It appends into a pooled
// scratch buffer and copies into an exactly-sized slice at the end — the
// cache retains the result indefinitely, so the returned slice must not
// alias pooled storage.
func materialize(reader formats.RecordReader) ([]wio.Pair, error) {
	sp := pairScratchPool.Get().(*[]wio.Pair)
	scratch := (*sp)[:0]
	release := func() {
		clear(scratch) // drop object references so the pool pins nothing
		*sp = scratch[:0]
		pairScratchPool.Put(sp)
	}
	for {
		k := reader.CreateKey()
		v := reader.CreateValue()
		ok, err := reader.Next(k, v)
		if err != nil {
			release()
			return nil, err
		}
		if !ok {
			out := make([]wio.Pair, len(scratch))
			copy(out, scratch)
			release()
			return out, nil
		}
		scratch = append(scratch, wio.Pair{Key: k, Value: v})
	}
}

// partitionInput accumulates one reduce partition's shuffled input as
// sorted runs, one per source map task. Map tasks sort their runs map-side
// (inside the already-parallel map phase, see shuffleCollector.flush), so
// the reduce task only k-way merges them — the run-based shuffle-and-sort
// pipeline that keeps the O(n log n) sort off the reduce critical path.
// Under a shuffle memory budget, runs that do not fit their place's
// accountant live on disk in the shared spill record format instead of on
// the heap, and re-enter the same merge through stream-backed leaves.
type partitionInput struct {
	x     *jobExec
	place int
	mu    sync.Mutex
	runs  []*sourceRun
}

// sourceRun is one map task's sorted contribution to a partition: resident
// pairs, or a spilled run on disk (exactly one of the two is set). size is
// the budget accounting size a resident run holds reserved (0 when the job
// is unbudgeted or the run could not be encoded), released back to the
// place's budget pool when the reduce merge drains the run. Runs are
// heap-allocated and shared with the place's residentSet so the
// largest-first policy can flip a cold resident run to spilled in place
// (under pi.mu) without disturbing its slot — and with it the src-order
// merge tie-break.
type sourceRun struct {
	src   int
	pairs []wio.Pair
	size  int64
	spill *spilledRun
}

// spilledRun locates one run spilled in the shared spill record format.
// The key/value class names ride in memory (not on disk, keeping the file
// format byte-identical to the Hadoop engine's) so the merge leaf can
// deserialize records back into writables; size is the run's budget
// accounting size, so readmission can reserve before promoting it back to
// memory.
type spilledRun struct {
	path               string
	keyClass, valClass string
	size               int64
}

// addRun installs one source task's sorted run. Each map task contributes
// at most one run per partition (its pairs are either all local or all
// remote with respect to the partition's place). With a budget configured,
// the run is serialized to learn its size — the cost Hadoop always pays at
// collect time — and the place's pool decides admission: under contention
// the largest-first policy may re-spill a larger cold resident run of this
// job to keep the newcomer in memory; a run the pool cannot admit spills to
// disk itself.
func (pi *partitionInput) addRun(ctx *engine.TaskContext, src int, pairs []wio.Pair) error {
	if len(pairs) == 0 {
		return nil
	}
	x := pi.x
	if x.budgets == nil {
		pi.install(&sourceRun{src: src, pairs: pairs})
		return nil
	}
	recs, keyClass, valClass, size, err := encodeRun(pairs)
	if err != nil {
		// Keys or values this job shuffles cannot round-trip through the
		// record format (unregistered or unserializable types); such a run
		// can only live on the heap, as in unbudgeted mode.
		pi.install(&sourceRun{src: src, pairs: pairs})
		return nil
	}
	return pi.admitEncodedRun(ctx, src, pairs, recs, keyClass, valClass, size)
}

// admitEncodedRun runs the per-run admission path for an already encoded
// run: the place's pool decides admission (with the largest-first eviction
// loop under contention), and a run the pool cannot admit spills to disk.
func (pi *partitionInput) admitEncodedRun(ctx *engine.TaskContext, src int, pairs []wio.Pair,
	recs []spill.Rec, keyClass, valClass string, size int64) error {
	x := pi.x
	admitted, contended, err := x.budgets[pi.place].ReserveEvicting(size, func(min int64) (int64, error) {
		return x.evictLargest(ctx, pi.place, min)
	})
	if err != nil {
		return err
	}
	if contended {
		ctx.Cells.PoolContendedBytes.Increment(size)
	}
	if admitted {
		r := &sourceRun{src: src, pairs: pairs, size: size}
		pi.install(r)
		x.resident[pi.place].add(r, pi)
		return nil
	}
	// Overflow: the run goes to disk. It is encoded to its exact on-disk
	// segment bytes here, at admission time, so counters, stats and cost
	// charge the stored (compressed) length before the write — identically
	// whether the write happens inline or later on the spill worker — and
	// so the queue's backlog holds compressed bytes, not raw ones.
	enc, err := spill.EncodeRun(recs, x.codec)
	if err != nil {
		return err
	}
	x.chargeSpill(ctx, enc, len(recs))
	req := spillReq{pi: pi, src: src, enc: enc, keyClass: keyClass, valClass: valClass, size: size}
	if x.spillQ != nil {
		return x.spillQ[pi.place].enqueue(req)
	}
	return writeSpill(x, req)
}

// chargeSpill charges one encoded run's spill to the task's counters and
// the engine's stats/cost model — at admission time, not write time, so
// the accounting is identical whether the write happens inline, on a spill
// worker, or as a largest-first eviction. SPILLED_BYTES (and the disk
// cost) is the stored length — compressed when a codec is configured —
// while SPILLED_RAW_BYTES is the raw record-format length, so the ratio
// between the two is the job's observable spill compression.
func (x *jobExec) chargeSpill(ctx *engine.TaskContext, enc spill.EncodedRun, nrecs int) {
	stored := int64(len(enc.Data))
	ctx.Cells.SpilledRuns.Increment(1)
	ctx.Cells.SpilledBytes.Increment(stored)
	ctx.Cells.SpilledRawBytes.Increment(enc.Raw)
	ctx.Cells.SpilledRecords.Increment(int64(nrecs))
	e := x.e
	e.stats.Add(sim.SpillBytes, stored)
	e.stats.Add(sim.SpillRawBytes, enc.Raw)
	e.stats.Add(sim.SpillFiles, 1)
	e.cost.ChargeDisk(e.stats, stored)
}

// installRuns installs one map task's whole flush toward place — its sorted
// run per partition, every partition living at that place — with batch
// admission: on a budgeted job the task's total encoded size is reserved in
// one pool transaction when it fits, installing every run resident with a
// single lock round instead of one admission (and one potential eviction
// loop) per partition. When the batch does not fit in one piece — or the
// job is unbudgeted — each run falls through to the per-run path.
func (x *jobExec) installRuns(ctx *engine.TaskContext, place, src int, runs map[int][]wio.Pair) error {
	if x.budgets == nil {
		for q, pairs := range runs {
			if len(pairs) == 0 {
				continue
			}
			x.parts[q].install(&sourceRun{src: src, pairs: pairs})
		}
		return nil
	}
	type encodedRun struct {
		q                  int
		pairs              []wio.Pair
		recs               []spill.Rec
		keyClass, valClass string
		size               int64
	}
	encs := make([]encodedRun, 0, len(runs))
	var total int64
	for q, pairs := range runs {
		if len(pairs) == 0 {
			continue
		}
		recs, keyClass, valClass, size, err := encodeRun(pairs)
		if err != nil {
			// Unencodable runs live on the heap, unaccounted (see addRun).
			x.parts[q].install(&sourceRun{src: src, pairs: pairs})
			continue
		}
		encs = append(encs, encodedRun{q, pairs, recs, keyClass, valClass, size})
		total += size
	}
	if len(encs) > 1 && x.budgets[place].Reserve(total) {
		for _, er := range encs {
			r := &sourceRun{src: src, pairs: er.pairs, size: er.size}
			pi := x.parts[er.q]
			pi.install(r)
			x.resident[place].add(r, pi)
		}
		return nil
	}
	for _, er := range encs {
		if err := x.parts[er.q].admitEncodedRun(ctx, src, er.pairs, er.recs, er.keyClass, er.valClass, er.size); err != nil {
			return err
		}
	}
	return nil
}

func (pi *partitionInput) install(r *sourceRun) {
	pi.mu.Lock()
	pi.runs = append(pi.runs, r)
	pi.mu.Unlock()
}

// encodeRun serializes a run into the shared spill record format, returning
// the records, the key/value class names needed to decode them, and the
// run's accounting size.
func encodeRun(pairs []wio.Pair) ([]spill.Rec, string, string, int64, error) {
	keyClass, err := wio.NameOf(pairs[0].Key)
	if err != nil {
		return nil, "", "", 0, err
	}
	valClass, err := wio.NameOf(pairs[0].Value)
	if err != nil {
		return nil, "", "", 0, err
	}
	recs := make([]spill.Rec, len(pairs))
	var size int64
	for i, p := range pairs {
		kb, err := wio.Marshal(p.Key)
		if err != nil {
			return nil, "", "", 0, err
		}
		vb, err := wio.Marshal(p.Value)
		if err != nil {
			return nil, "", "", 0, err
		}
		recs[i] = spill.Rec{K: kb, V: vb}
		size += recs[i].Size()
	}
	return recs, keyClass, valClass, size, nil
}

// takeReaders returns one merge leaf per accumulated run, ordered by source
// task, detaching them from the partition. Source order is the merge's
// stability tie-break: equal keys surface in map-task order, exactly as the
// old concatenate-then-stable-sort path produced them, whether a run stayed
// resident, spilled, or was readmitted.
//
// Budgeted runs get the incremental-release wrapper: as the merge exhausts
// (or abandons) a resident run, its reservation returns to the place's
// accountant, so a long reduce phase frees memory while it is still
// running. With readmission enabled, a spilled run whose size now fits the
// freed budget is promoted back to a resident run here — decoded once,
// merged from memory — instead of stream-decoding off disk.
func (pi *partitionInput) takeReaders(ctx *engine.TaskContext) ([]engine.RunReader, error) {
	x := pi.x
	pi.mu.Lock()
	defer pi.mu.Unlock()
	slices.SortStableFunc(pi.runs, func(a, b *sourceRun) int { return a.src - b.src })
	var acct *engine.JobBudget
	if x.budgets != nil {
		acct = x.budgets[pi.place]
	}
	out := make([]engine.RunReader, 0, len(pi.runs))
	for _, r := range pi.runs {
		if r.spill == nil {
			rd := engine.NewSliceRunReader(r.pairs)
			if acct != nil && r.size > 0 {
				rd = releasingReader(rd, acct, r.size, ctx)
			}
			out = append(out, rd)
			continue
		}
		if x.readmit && acct != nil && acct.Reserve(r.spill.size) {
			pairs, err := readSpilledRun(r.spill)
			if err != nil {
				acct.Release(r.spill.size)
				engine.CloseAllOnErr(out)
				return nil, err
			}
			ctx.Cells.ReadmittedRuns.Increment(1)
			out = append(out, releasingReader(engine.NewSliceRunReader(pairs), acct, r.spill.size, ctx))
			continue
		}
		s, err := spill.OpenFile(r.spill.path)
		if err != nil {
			engine.CloseAllOnErr(out)
			return nil, err
		}
		out = append(out, engine.NewDecodingRunReader(s, r.spill.keyClass, r.spill.valClass))
	}
	pi.runs = nil
	return out, nil
}

// releasingReader wraps a resident run's reader to hand size bytes back to
// acct exactly once — when the merge exhausts or closes the run — counting
// them in BUDGET_RELEASED_BYTES.
func releasingReader(rd engine.RunReader, acct *engine.JobBudget, size int64, ctx *engine.TaskContext) engine.RunReader {
	cell := ctx.Cells.BudgetReleasedBytes
	return engine.NewReleasingRunReader(rd, func() {
		acct.Release(size)
		cell.Increment(size)
	})
}

// readSpilledRun decodes a spilled run fully back into fresh writables —
// the readmission read. The caller holds the run's budget reservation.
func readSpilledRun(sr *spilledRun) ([]wio.Pair, error) {
	s, err := spill.OpenFile(sr.path)
	if err != nil {
		return nil, err
	}
	rd := engine.NewDecodingRunReader(s, sr.keyClass, sr.valClass)
	defer rd.Close()
	var pairs []wio.Pair
	for {
		p, ok, err := rd.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return pairs, nil
		}
		pairs = append(pairs, p)
	}
}

// runReduceTask executes one reduce partition at its stable place.
func (x *jobExec) runReduceTask(q int) (err error) {
	e := x.e
	if err := x.lc.Err(); err != nil {
		return err
	}
	e.stats.Add(sim.TasksLaunched, 1)
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("reduce task %d panicked: %v\n%s", q, p, debug.Stack())
		}
	}()
	place := e.PlaceOfPartition(q)
	taskJob := x.job.CloneJob()
	taskJob.Set(conf.KeyM3RTaskPlace, strconv.Itoa(place))
	taskJob.Set(conf.KeyTaskPartition, strconv.Itoa(q))
	taskID := fmt.Sprintf("attempt_%s_r_%06d_0", x.jobID, q)
	ctx := engine.NewTaskContext(taskJob, taskID, nil)
	ctx.IncrCounter(counters.JobGroup, counters.TotalLaunchedReduces, 1)

	// The HMR API promises reducers sorted input even in memory. Map tasks
	// shipped sorted runs (resident or spilled); merge them stably through
	// the tournament tree, streaming straight into the reducer instead of
	// materializing a merged copy of the partition. With staging configured
	// and enough runs, contiguous subsets of the run set merge on worker
	// goroutines — spilled runs decode on those workers, overlapping disk
	// decode with final-merge consumption — and the final tournament still
	// streams into DriveReduce.
	readers, err := x.parts[q].takeReaders(ctx)
	if err != nil {
		return err
	}
	merged, err := engine.NewStagedMergeIter(readers, x.rj.SortCmp, x.mergeCfg, ctx.Cells.ParallelMergeStages)
	if err != nil {
		return err
	}
	defer merged.Close()

	reducer := x.rj.NewReduceRun()
	reducer.Configure(taskJob)

	fileName := fmt.Sprintf("part-%05d", q)
	outPath := x.job.OutputPath()
	var cacheW *OutputWriter
	var rw formats.RecordWriter
	if outPath != "" {
		finalPath := dfs.Join(outPath, fileName)
		if x.cacheEnabled {
			w, err := e.cache.NewOutputWriter(place, finalPath, x.temp)
			if err != nil {
				return err
			}
			cacheW = w
		}
		if x.writeOutput {
			x.committer.SetupTask(taskJob, taskID)
			outputFormat, err := x.rj.NewOutputFormat()
			if err != nil {
				return err
			}
			w, err := outputFormat.GetRecordWriter(taskJob, fileName)
			if err != nil {
				return err
			}
			rw = w
		} else {
			// Temporary output: bytes never reach the filesystem (§4.2.3).
			ctx.IncrCounter(counters.M3RGroup, counters.TempOutputsElided, 1)
		}
	}

	cells := &ctx.Cells
	collector := mapredCollector{collectFunc(func(k, v wio.Writable) error {
		cells.ReduceOutputRecords.Increment(1)
		if cacheW != nil {
			ck, cv := k, v
			if !x.rj.ReduceImmutable {
				ck, cv = wio.MustClone(k), wio.MustClone(v)
				e.stats.Add(sim.ClonedPairs, 1)
				cells.ClonedPairs.Increment(1)
			} else {
				e.stats.Add(sim.AliasedPairs, 1)
				cells.AliasedPairs.Increment(1)
			}
			cacheW.Append(wio.Pair{Key: ck, Value: cv})
		}
		if rw != nil {
			return rw.Write(k, v)
		}
		return nil
	})}

	// A failing task must not leave its partial output visible in the
	// cache: later jobs would read the truncated file as a cache hit.
	cacheDone := false
	defer func() {
		if cacheW != nil && !cacheDone {
			cacheW.Abort()
		}
	}()

	// The cancel wrapper is the reduce phase's per-record check: one atomic
	// load per pair, surfacing the kill as the stream error so the merge
	// closes and the committer aborts through the normal failure path.
	in := engine.CancelPairIter(merged, x.lc)
	if err := engine.DriveReduce(reducer, x.rj.GroupCmp, in, collector, ctx, false); err != nil {
		if rw != nil {
			rw.Close()
			x.committer.AbortTask(taskJob, taskID)
		}
		return fmt.Errorf("reduce task %d: %w", q, err)
	}
	if rw != nil {
		if err := rw.Close(); err != nil {
			return err
		}
		// Task commit is a rename into the job's scratch space; a cancelled
		// task aborts instead, so a kill racing the job's tail never
		// half-publishes.
		if err := x.lc.Err(); err != nil {
			x.committer.AbortTask(taskJob, taskID)
			return err
		}
		if err := x.committer.CommitTask(taskJob, taskID); err != nil {
			return err
		}
	}
	if cacheW != nil {
		if err := cacheW.Close(); err != nil {
			return err
		}
	}
	cacheDone = true
	x.mergeCounters(ctx)
	return nil
}

// collectFunc adapts a function to the collector shape.
type collectFunc func(k, v wio.Writable) error

func (f collectFunc) Collect(k, v wio.Writable) error { return f(k, v) }
