// m3rrun runs a registered workload on a simulated cluster with either
// engine, in integrated or server mode — a command-line JobClient.
//
// Usage:
//
//	go run ./cmd/m3rrun -job wordcount -engine m3r
//	go run ./cmd/m3rrun -job matvec -engine hadoop -nodes 8
//	go run ./cmd/m3rrun -job wordcount -engine m3r -server   # via TCP
//	go run ./cmd/m3rrun -job wordcount -transport tcp        # worker processes
//
// With -transport tcp, m3rrun spawns one worker process per node (itself,
// re-executed in `m3rrun worker` mode), registers them with an in-process
// coordinator, and routes every cross-place shuffle frame through the
// destination node's worker over TCP. `m3rrun worker -coordinator addr`
// is that worker mode: register, serve frames, exit when the coordinator
// goes away.
//
// Job lifecycle knobs:
//
//	-deadline 30s       fail each job that outlives the deadline
//	                    (m3r.job.deadline.ms)
//	-max-attempts 3     bound per-task re-execution on the hadoop engine
//	                    (mapred.map.max.attempts / mapred.reduce.max.attempts)
//	-failover           on an m3r job failure, roll back and resubmit the
//	                    job to the hadoop engine (m3r.job.failover)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strings"
	"time"

	"m3r/internal/conf"
	"m3r/internal/engine"
	"m3r/internal/lab"
	"m3r/internal/matrix"
	"m3r/internal/microbench"
	"m3r/internal/server"
	"m3r/internal/sysml"
	"m3r/internal/wordcount"
	"m3r/internal/x10"
)

var (
	jobName    = flag.String("job", "wordcount", "workload: wordcount, matvec, microbench, pagerank, gnmf, linreg")
	engineName = flag.String("engine", "m3r", "engine: m3r or hadoop")
	nodes      = flag.Int("nodes", 4, "simulated cluster size")
	iterations = flag.Int("iters", 3, "iterations for iterative workloads")
	useServer  = flag.Bool("server", false, "submit through the TCP jobtracker protocol (server mode)")
	transport  = flag.String("transport", "inproc", "place transport: inproc (all places in this process) or tcp (one worker process per node)")
	sizeMB     = flag.Int64("mb", 4, "input size in MB (wordcount)")
	// Shuffle memory lifecycle knobs (shorthand for the corresponding -D
	// keys; see internal/conf: m3r.shuffle.budget.bytes / .spill.queue /
	// .readmit).
	budget     = flag.Int64("shuffle-budget", 0, "per-job, per-place shuffle budget in bytes (0 = unlimited; with -engine-shuffle-budget, the job's cap within the pool)")
	spillQueue = flag.Int("spill-queue", 0, "async spill queue depth per place (0 = synchronous spills)")
	readmit    = flag.Bool("readmit", false, "readmit spilled runs to memory when released budget makes room")
	spillCodec = flag.String("spill-codec", "", "spill block compression codec: none or flate (default M3R_SPILL_CODEC env, else none)")
	// The engine pool is engine-lifetime state (m3r.engine.shuffle.budget.bytes),
	// so it configures the cluster, not a job: all jobs of the sequence —
	// including concurrent server-mode submissions — contend for this one
	// per-place pool, with the largest-first policy arbitrating overflow.
	engineBudget = flag.Int64("engine-shuffle-budget", 0,
		"engine-scoped per-place shuffle memory pool in bytes, shared by all jobs of the sequence (0 = M3R_ENGINE_SHUFFLE_BUDGET_BYTES env default, negative = no pool)")
	// The cache budget is likewise engine-lifetime (m3r.cache.budget.bytes):
	// cache entries outlive the jobs that wrote them, so their ceiling
	// belongs to the engine, not a job conf.
	cacheBudget = flag.Int64("cache-budget", 0,
		"engine-scoped per-place inter-job cache budget in bytes; cold entries spill to disk and readmit on access (0 = M3R_CACHE_BUDGET_BYTES env default, negative = unbounded)")
	// Job lifecycle knobs (shorthand for m3r.job.deadline.ms,
	// mapred.{map,reduce}.max.attempts, and m3r.job.failover).
	deadline    = flag.Duration("deadline", 0, "per-job deadline; a job that outlives it fails with a deadline error (0 = none)")
	maxAttempts = flag.Int("max-attempts", 0, "max task attempts on the hadoop engine, map and reduce (0 = engine default)")
	failover    = flag.Bool("failover", false, "resubmit failed m3r jobs to the hadoop engine after rollback (m3r.job.failover)")
	confProps   propFlags
)

// propFlags collects repeatable -D key=value job configuration overrides,
// Hadoop's GenericOptionsParser idiom (e.g. -D m3r.shuffle.budget.bytes=4096).
type propFlags []string

func (p *propFlags) String() string { return strings.Join(*p, ",") }

func (p *propFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want key=value, got %q", v)
	}
	*p = append(*p, v)
	return nil
}

// apply copies the -D overrides into job.
func (p propFlags) apply(job *conf.JobConf) *conf.JobConf {
	for _, kv := range p {
		k, v, _ := strings.Cut(kv, "=")
		job.Set(k, v)
	}
	return job
}

// confOverrideEngine applies the -D overrides to every job submitted
// through it, so the flag reaches jobs that workload drivers construct
// internally (matvec, microbench, the sysml pipelines).
type confOverrideEngine struct {
	engine.Engine
	props propFlags
}

// Submit implements engine.Engine.
func (e confOverrideEngine) Submit(job *conf.JobConf) (*engine.Report, error) {
	return e.Engine.Submit(e.props.apply(job))
}

// runWorker is the `m3rrun worker` entrypoint: a place's worker process.
// It registers with the coordinator, serves shuffle frames for its assigned
// place, and exits when the coordinator's registration connection drops.
func runWorker(args []string) {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator address to register with (required)")
	fs.Parse(args)
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "m3rrun worker: -coordinator is required")
		os.Exit(2)
	}
	if err := server.RunWorker(*coord); err != nil {
		log.Fatalf("m3rrun worker: %v", err)
	}
}

// startTCPTransport spawns one `m3rrun worker` subprocess per node,
// registers them with an in-process coordinator, and returns the transport
// plus a teardown closing coordinator and workers.
func startTCPTransport(nodes int) (*x10.TCPTransport, func(), error) {
	coord, err := server.ServeCoordinator("127.0.0.1:0", nodes)
	if err != nil {
		return nil, nil, err
	}
	self, err := os.Executable()
	if err != nil {
		coord.Close()
		return nil, nil, err
	}
	procs := make([]*exec.Cmd, 0, nodes)
	stop := func() {
		coord.Close() // workers see the registration conn drop and exit
		for _, p := range procs {
			p.Wait()
		}
	}
	for i := 0; i < nodes; i++ {
		cmd := exec.Command(self, "worker", "-coordinator", coord.Addr())
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			stop()
			return nil, nil, err
		}
		procs = append(procs, cmd)
	}
	if _, err := coord.WaitReady(30 * time.Second); err != nil {
		stop()
		return nil, nil, err
	}
	return coord.Transport(x10.TCPOptions{}), stop, nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		runWorker(os.Args[2:])
		return
	}
	flag.Var(&confProps, "D", "job configuration override key=value (repeatable)")
	flag.Parse()
	// Forward a lifecycle flag whenever the operator set it — including an
	// explicit 0/false: a key set on the job (even to its default) overrides
	// the engine's env-injected defaults, so `-shuffle-budget 0` really does
	// mean unlimited in a shell that exports M3R_SHUFFLE_BUDGET_BYTES.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "shuffle-budget":
			confProps = append(confProps, fmt.Sprintf("%s=%d", conf.KeyM3RShuffleBudget, *budget))
		case "spill-queue":
			confProps = append(confProps, fmt.Sprintf("%s=%d", conf.KeyM3RSpillQueue, *spillQueue))
		case "readmit":
			confProps = append(confProps, fmt.Sprintf("%s=%t", conf.KeyM3RReadmit, *readmit))
		case "spill-codec":
			confProps = append(confProps, fmt.Sprintf("%s=%s", conf.KeyM3RSpillCodec, *spillCodec))
		case "deadline":
			confProps = append(confProps, fmt.Sprintf("%s=%d", conf.KeyJobDeadlineMS, deadline.Milliseconds()))
		case "max-attempts":
			confProps = append(confProps,
				fmt.Sprintf("%s=%d", conf.KeyMaxMapAttempts, *maxAttempts),
				fmt.Sprintf("%s=%d", conf.KeyMaxReduceAttempts, *maxAttempts))
		case "failover":
			confProps = append(confProps, fmt.Sprintf("%s=%t", conf.KeyM3RFailover, *failover))
		}
	})
	var tr x10.Transport
	switch *transport {
	case "inproc":
	case "tcp":
		t, stop, err := startTCPTransport(*nodes)
		if err != nil {
			log.Fatalf("starting tcp transport workers: %v", err)
		}
		defer stop()
		fmt.Printf("tcp transport: %d worker processes registered\n", *nodes)
		tr = t
	default:
		fmt.Fprintf(os.Stderr, "unknown transport %q\n", *transport)
		os.Exit(2)
	}
	cluster, err := lab.New(lab.Options{Nodes: *nodes, ShuffleBudgetBytes: *engineBudget, CacheBudgetBytes: *cacheBudget, Transport: tr})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	defer cluster.Close()

	var eng engine.Engine
	switch *engineName {
	case "m3r":
		eng = cluster.M3R
	case "hadoop":
		eng = cluster.Hadoop
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engineName)
		os.Exit(2)
	}
	if *useServer {
		srv, err := server.Serve(eng, "127.0.0.1:0")
		if err != nil {
			log.Fatalf("starting server: %v", err)
		}
		defer srv.Close()
		client, err := server.Dial(srv.Addr())
		if err != nil {
			log.Fatalf("dialing server: %v", err)
		}
		fmt.Printf("submitting via server mode (%s)\n", srv.Addr())
		eng = client
	}
	if len(confProps) > 0 {
		eng = confOverrideEngine{Engine: eng, props: confProps}
	}

	switch *jobName {
	case "wordcount":
		if err := wordcount.Generate(cluster.FS, "/data/text", *sizeMB<<20, 42); err != nil {
			log.Fatal(err)
		}
		rep, err := eng.Submit(wordcount.NewJob("/data/text", "/out/wc", *nodes, true))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep)
		fmt.Print(rep.Counters)
	case "matvec":
		cfg := matrix.Config{
			RowBlocks: 2 * *nodes, ColBlocks: 2 * *nodes, BlockSize: 100,
			Sparsity: 0.01, Partitions: 2 * *nodes, Dir: "/mv", Seed: 7,
		}
		if err := matrix.Generate(cluster.FS, cfg); err != nil {
			log.Fatal(err)
		}
		_, reports, err := matrix.RunIterations(eng, cfg, *iterations)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range reports {
			fmt.Println(r)
		}
	case "microbench":
		cfg := microbench.Config{
			Pairs: 2000, ValueBytes: 2048, Percent: 50,
			Iterations: *iterations, Partitions: *nodes, Dir: "/mb", Seed: 1,
		}
		if err := microbench.Generate(cluster.FS, cfg); err != nil {
			log.Fatal(err)
		}
		reports, err := microbench.Run(eng, cfg)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range reports {
			fmt.Println(r)
		}
	case "pagerank", "gnmf", "linreg":
		d, err := sysml.NewDriver(eng, "/sysml", *nodes)
		if err != nil {
			log.Fatal(err)
		}
		switch *jobName {
		case "pagerank":
			_, err = sysml.PageRank(d, sysml.PageRankConfig{
				Nodes: 400, BlockSize: 100, Sparsity: 0.01, Iterations: *iterations, Seed: 21,
			})
		case "gnmf":
			_, _, err = sysml.GNMF(d, sysml.GNMFConfig{
				Rows: 400, Cols: 200, Rank: 10, BlockSize: 100,
				Sparsity: 0.01, Iterations: *iterations, Seed: 41,
			})
		case "linreg":
			_, err = sysml.LinReg(d, sysml.LinRegConfig{
				Points: 400, Vars: 100, BlockSize: 100, Iterations: *iterations, Seed: 31,
			})
		}
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range d.Reports {
			fmt.Println(r)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown job %q\n", *jobName)
		os.Exit(2)
	}
}
