// dfsadmin is an interactive shell over the simulated HDFS: it spins up a
// fresh namenode/datanode cluster and accepts filesystem commands on
// stdin, printing block placement and replication the way `hdfs fsck`
// would. Useful for poking at the substrate's placement behaviour.
//
// Usage:
//
//	go run ./cmd/dfsadmin -nodes 4 <<'EOF'
//	put /greeting hello world
//	ls /
//	locate /greeting
//	stat /greeting
//	cat /greeting
//	rm /greeting
//	EOF
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"m3r/internal/dfs"
	"m3r/internal/sim"
)

var (
	nodes     = flag.Int("nodes", 4, "datanode count")
	blockSize = flag.Int64("blocksize", 64, "block size in bytes (small, to show splitting)")
	repl      = flag.Int("replication", 2, "replication factor")
)

func main() {
	flag.Parse()
	dir, err := os.MkdirTemp("", "dfsadmin-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	hosts := make([]string, *nodes)
	for i := range hosts {
		hosts[i] = fmt.Sprintf("node%d", i)
	}
	fs, err := dfs.NewHDFS(dfs.HDFSOptions{
		Root:        dir,
		Hosts:       hosts,
		BlockSize:   *blockSize,
		Replication: *repl,
		Stats:       sim.NewStats(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated HDFS up: %d nodes, %dB blocks, replication %d\n", *nodes, *blockSize, *repl)

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		cmd, args := fields[0], fields[1:]
		if err := run(fs, cmd, args, line); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	}
}

func run(fs *dfs.HDFS, cmd string, args []string, line string) error {
	switch cmd {
	case "put":
		if len(args) < 2 {
			return fmt.Errorf("usage: put <path> <contents...>")
		}
		content := strings.SplitN(line, " ", 3)[2]
		return dfs.WriteFile(fs, args[0], []byte(content))
	case "cat":
		if len(args) != 1 {
			return fmt.Errorf("usage: cat <path>")
		}
		b, err := dfs.ReadAll(fs, args[0])
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	case "ls":
		path := "/"
		if len(args) > 0 {
			path = args[0]
		}
		ls, err := fs.List(path)
		if err != nil {
			return err
		}
		for _, st := range ls {
			kind := "-"
			if st.IsDir {
				kind = "d"
			}
			fmt.Printf("%s %8d  %s\n", kind, st.Size, st.Path)
		}
		return nil
	case "stat":
		if len(args) != 1 {
			return fmt.Errorf("usage: stat <path>")
		}
		st, err := fs.Stat(args[0])
		if err != nil {
			return err
		}
		fmt.Printf("%s: size=%d dir=%v blocksize=%d replication=%d\n",
			st.Path, st.Size, st.IsDir, st.BlockSize, st.Replication)
		return nil
	case "locate":
		if len(args) != 1 {
			return fmt.Errorf("usage: locate <path>")
		}
		st, err := fs.Stat(args[0])
		if err != nil {
			return err
		}
		locs, err := fs.BlockLocations(args[0], 0, st.Size)
		if err != nil {
			return err
		}
		for i, l := range locs {
			fmt.Printf("block %d: offset=%d len=%d hosts=%s\n", i, l.Offset, l.Length, strings.Join(l.Hosts, ","))
		}
		return nil
	case "rm":
		if len(args) != 1 {
			return fmt.Errorf("usage: rm <path>")
		}
		return fs.Delete(args[0], true)
	case "mv":
		if len(args) != 2 {
			return fmt.Errorf("usage: mv <src> <dst>")
		}
		return fs.Rename(args[0], args[1])
	case "mkdir":
		if len(args) != 1 {
			return fmt.Errorf("usage: mkdir <path>")
		}
		return fs.Mkdirs(args[0])
	case "help":
		fmt.Println("commands: put cat ls stat locate rm mv mkdir help")
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}
