// Command m3rlint runs the repo's static-analysis suite (internal/lint)
// over module packages and exits nonzero on any diagnostic.
//
// Usage:
//
//	go run ./cmd/m3rlint ./...
//
// Diagnostics print as file:line:col: message (analyzer). A deliberate
// violation is suppressed with //lint:ignore <analyzer> <reason> on the
// flagged line or the line above; the justification is mandatory. Exit
// status: 0 clean, 1 diagnostics, 2 load failure.
package main

import (
	"flag"
	"fmt"
	"os"

	"m3r/internal/lint"
)

func main() {
	listOnly := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: m3rlint [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *listOnly {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatal(err)
	}
	canon, err := loader.Canon()
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(pkgs, analyzers, canon)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "m3rlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "m3rlint:", err)
	os.Exit(2)
}
