// m3rbench regenerates every figure of the paper's evaluation (§6) on the
// simulated cluster: for each experiment it prints the same series the
// paper plots, with engine wall-clock times in seconds. Absolute numbers
// are scaled (see DESIGN.md); the shapes — who wins, by what factor, what
// is flat and what is linear — are the reproduction target.
//
// Usage:
//
//	go run ./cmd/m3rbench -fig all
//	go run ./cmd/m3rbench -fig 7 -nodes 8
//	go run ./cmd/m3rbench -fig 6 -quick
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"m3r/internal/conf"
	"m3r/internal/engine"
	"m3r/internal/lab"
	"m3r/internal/matrix"
	"m3r/internal/microbench"
	"m3r/internal/sim"
	"m3r/internal/sysml"
	"m3r/internal/wordcount"
)

var (
	fig   = flag.String("fig", "all", "which figure to regenerate: 6, 7, 8, 9, 10, 11, repart, ablate, all")
	nodes = flag.Int("nodes", 4, "simulated cluster size")
	quick = flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
)

func main() {
	flag.Parse()
	runs := map[string]func(){
		"6":      fig6,
		"7":      fig7,
		"8":      fig8,
		"9":      fig9,
		"10":     fig10,
		"11":     fig11,
		"repart": repart,
		"ablate": ablate,
	}
	if *fig == "all" {
		for _, k := range []string{"6", "repart", "7", "8", "9", "10", "11", "ablate"} {
			runs[k]()
		}
		return
	}
	f, ok := runs[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		os.Exit(2)
	}
	f()
}

func newCluster() *lab.Cluster {
	c, err := lab.New(lab.Options{Nodes: *nodes})
	if err != nil {
		log.Fatalf("building cluster: %v", err)
	}
	return c
}

func secs(d time.Duration) string { return fmt.Sprintf("%8.3f", d.Seconds()) }

// fig6: the shuffle microbenchmark — running time vs remote %, three
// iterations, both engines.
func fig6() {
	fmt.Println("\n== Figure 6: shuffle microbenchmark (seconds per iteration) ==")
	fmt.Println("remote%  engine    iter1    iter2    iter3")
	ratios := []int{0, 20, 40, 60, 80, 100}
	pairs, valBytes := 3000, 2048
	if *quick {
		ratios = []int{0, 50, 100}
		pairs = 800
	}
	for _, pct := range ratios {
		c := newCluster()
		for _, eng := range []engine.Engine{c.Hadoop, c.M3R} {
			cfg := microbench.Config{
				Pairs: pairs, ValueBytes: valBytes, Percent: pct,
				Iterations: 3, Partitions: *nodes,
				Dir:  fmt.Sprintf("/micro-%s-%d", eng.Name(), pct),
				Seed: 1,
			}
			if err := microbench.Generate(c.FS, cfg); err != nil {
				log.Fatal(err)
			}
			reports, err := microbench.Run(eng, cfg)
			if err != nil {
				log.Fatalf("fig6 %s %d%%: %v", eng.Name(), pct, err)
			}
			fmt.Printf("%6d   %-7s", pct, eng.Name())
			for _, r := range reports {
				fmt.Print(secs(r.Wall))
			}
			fmt.Println()
		}
		c.Close()
	}
}

// repart: §6.1.1 — the one-off repartitioning cost vs a post-repartition
// iteration.
func repart() {
	fmt.Println("\n== §6.1.1: repartitioning foreign data (one-off) ==")
	c := newCluster()
	defer c.Close()
	cfg := microbench.Config{
		Pairs: 3000, ValueBytes: 2048, Percent: 0,
		Iterations: 1, Partitions: *nodes, Dir: "/mb", Seed: 1,
	}
	if *quick {
		cfg.Pairs = 800
	}
	if err := microbench.GenerateUnaligned(c.FS, cfg, "/mb/foreign"); err != nil {
		log.Fatal(err)
	}
	before := c.Stats.Snapshot()
	rep, err := c.M3R.Submit(cfg.RepartitionJob("/mb/foreign", "/mb/input"))
	if err != nil {
		log.Fatal(err)
	}
	d := sim.Delta(before, c.Stats.Snapshot())
	fmt.Printf("repartition job: %ss, %d KB shuffled remotely\n", secs(rep.Wall), d[sim.RemoteBytes]>>10)
	before = c.Stats.Snapshot()
	reports, err := microbench.Run(c.M3R, cfg)
	if err != nil {
		log.Fatal(err)
	}
	d = sim.Delta(before, c.Stats.Snapshot())
	fmt.Printf("0%%-remote iteration after repartition: %ss, %d bytes shuffled remotely\n",
		secs(reports[0].Wall), d[sim.RemoteBytes])
}

// fig7: hand-written sparse matrix × dense vector — running time vs rows.
func fig7() {
	fmt.Println("\n== Figure 7: sparse matrix × dense vector, 3 iterations (seconds total) ==")
	fmt.Println("rows     hadoop     m3r    speedup")
	sizes := []int{2, 4, 8, 12}
	if *quick {
		sizes = []int{2, 4}
	}
	const blockSize = 100
	for _, rb := range sizes {
		row := fmt.Sprintf("%-6d", rb*blockSize)
		var hSecs, mSecs float64
		for _, which := range []string{"hadoop", "m3r"} {
			c := newCluster()
			eng := engine.Engine(c.Hadoop)
			if which == "m3r" {
				eng = c.M3R
			}
			cfg := matrix.Config{
				RowBlocks: rb, ColBlocks: rb, BlockSize: blockSize,
				Sparsity: 0.01, Partitions: *nodes,
				Dir: "/mv", Seed: 7,
			}
			if err := matrix.Generate(c.FS, cfg); err != nil {
				log.Fatal(err)
			}
			_, reports, err := matrix.RunIterations(eng, cfg, 3)
			if err != nil {
				log.Fatalf("fig7 %s rows=%d: %v", which, rb*blockSize, err)
			}
			var total float64
			for _, r := range reports {
				total += r.Wall.Seconds()
			}
			if which == "hadoop" {
				hSecs = total
			} else {
				mSecs = total
			}
			c.Close()
		}
		fmt.Printf("%s %8.3f %8.3f %8.1fx\n", row, hSecs, mSecs, hSecs/mSecs)
	}
}

// fig8: WordCount — running time vs input size, three series: Hadoop with
// the reusing mapper, Hadoop with the allocating (ImmutableOutput-ready)
// mapper, and M3R.
func fig8() {
	fmt.Println("\n== Figure 8: WordCount (seconds) ==")
	fmt.Println("MB    hadoop-reuse  hadoop-new     m3r")
	sizes := []int64{1, 2, 4, 8}
	if *quick {
		sizes = []int64{1, 2}
	}
	for _, mb := range sizes {
		var cols []float64
		for _, series := range []struct {
			m3r       bool
			immutable bool
		}{
			{false, false}, // Hadoop re-use TextWritable
			{false, true},  // Hadoop new TextWritable()
			{true, true},   // M3R (ImmutableOutput variant)
		} {
			c := newCluster()
			if err := wordcount.Generate(c.FS, "/data/t", mb<<20, 42); err != nil {
				log.Fatal(err)
			}
			eng := engine.Engine(c.Hadoop)
			if series.m3r {
				eng = c.M3R
			}
			rep, err := eng.Submit(wordcount.NewJob("/data/t", "/out/w", *nodes, series.immutable))
			if err != nil {
				log.Fatalf("fig8: %v", err)
			}
			cols = append(cols, rep.Wall.Seconds())
			c.Close()
		}
		fmt.Printf("%-4d %10.3f %12.3f %10.3f\n", mb, cols[0], cols[1], cols[2])
	}
}

// sysmlRow runs one SystemML-style algorithm on both engines and prints a
// table row: size, hadoop seconds, m3r seconds, speedup.
func sysmlRow(size int, run func(d *sysml.Driver) error) {
	var hSecs, mSecs float64
	for _, which := range []string{"hadoop", "m3r"} {
		c := newCluster()
		eng := engine.Engine(c.Hadoop)
		if which == "m3r" {
			eng = c.M3R
		}
		d, err := sysml.NewDriver(eng, "/sysml", *nodes)
		if err != nil {
			log.Fatal(err)
		}
		if err := run(d); err != nil {
			log.Fatalf("sysml %s size=%d: %v", which, size, err)
		}
		var total float64
		for _, r := range d.Reports {
			total += r.Wall.Seconds()
		}
		if which == "hadoop" {
			hSecs = total
		} else {
			mSecs = total
		}
		c.Close()
	}
	fmt.Printf("%-7d %8.3f %8.3f %8.1fx\n", size, hSecs, mSecs, hSecs/mSecs)
}

// fig9: SystemML GNMF — running time vs rows.
func fig9() {
	fmt.Println("\n== Figure 9: SystemML GNMF, 2 iterations (seconds total) ==")
	fmt.Println("rows     hadoop     m3r    speedup")
	sizes := []int32{200, 400, 800}
	if *quick {
		sizes = []int32{200}
	}
	for _, rows := range sizes {
		cfg := sysml.GNMFConfig{
			Rows: rows, Cols: 200, Rank: 10, BlockSize: 100,
			Sparsity: 0.01, Iterations: 2, Seed: 41,
		}
		sysmlRow(int(rows), func(d *sysml.Driver) error {
			_, _, err := sysml.GNMF(d, cfg)
			return err
		})
	}
}

// fig10: SystemML linear regression — running time vs sample points.
func fig10() {
	fmt.Println("\n== Figure 10: SystemML linear regression (CG), 2 iterations (seconds total) ==")
	fmt.Println("points   hadoop     m3r    speedup")
	sizes := []int32{200, 400, 800}
	if *quick {
		sizes = []int32{200}
	}
	for _, pts := range sizes {
		cfg := sysml.LinRegConfig{
			Points: pts, Vars: 100, BlockSize: 100, Iterations: 2, Seed: 31,
		}
		sysmlRow(int(pts), func(d *sysml.Driver) error {
			_, err := sysml.LinReg(d, cfg)
			return err
		})
	}
}

// fig11: SystemML PageRank — running time vs graph size.
func fig11() {
	fmt.Println("\n== Figure 11: SystemML PageRank, 3 iterations (seconds total) ==")
	fmt.Println("nodes    hadoop     m3r    speedup")
	sizes := []int32{200, 400, 800}
	if *quick {
		sizes = []int32{200}
	}
	for _, n := range sizes {
		cfg := sysml.PageRankConfig{
			Nodes: n, BlockSize: 100, Sparsity: 0.01, Iterations: 3, Seed: 21,
		}
		sysmlRow(int(n), func(d *sysml.Driver) error {
			_, err := sysml.PageRank(d, cfg)
			return err
		})
	}
}

// ablate isolates each M3R mechanism the paper credits for its gains.
func ablate() {
	fmt.Println("\n== Ablations: one M3R mechanism at a time ==")

	// ImmutableOutput: cloning cost on the shuffle (§4.1, Fig. 4).
	{
		c := newCluster()
		if err := wordcount.Generate(c.FS, "/data/t", 2<<20, 42); err != nil {
			log.Fatal(err)
		}
		repMut, err := c.M3R.Submit(wordcount.NewJob("/data/t", "/out/mut", *nodes, false))
		if err != nil {
			log.Fatal(err)
		}
		repImm, err := c.M3R.Submit(wordcount.NewJob("/data/t", "/out/imm", *nodes, true))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ImmutableOutput (wordcount on M3R): mutating %ss  immutable %ss\n",
			secs(repMut.Wall), secs(repImm.Wall))
		c.Close()
	}

	// Partition stability: the matvec sum job under the row partitioner
	// (stable) vs the default hash partitioner (unstable).
	{
		c := newCluster()
		cfg := matrix.Config{
			RowBlocks: 8, ColBlocks: 8, BlockSize: 100, Sparsity: 0.01,
			Partitions: *nodes, Dir: "/mv", Seed: 7,
		}
		if err := matrix.Generate(c.FS, cfg); err != nil {
			log.Fatal(err)
		}
		jobs := matrix.IterationJobs(cfg, cfg.VPath(), cfg.Dir+"/temp_V_1", 0)
		if _, err := c.M3R.Submit(jobs[0]); err != nil {
			log.Fatal(err)
		}
		before := c.Stats.Snapshot()
		if _, err := c.M3R.Submit(jobs[1]); err != nil {
			log.Fatal(err)
		}
		stable := sim.Delta(before, c.Stats.Snapshot())[sim.RemoteBytes]

		jobs2 := matrix.IterationJobs(cfg, cfg.Dir+"/temp_V_1", cfg.Dir+"/temp_V_2", 1)
		jobs2[1].SetPartitionerClass("org.apache.hadoop.mapred.lib.HashPartitioner")
		if _, err := c.M3R.Submit(jobs2[0]); err != nil {
			log.Fatal(err)
		}
		before = c.Stats.Snapshot()
		if _, err := c.M3R.Submit(jobs2[1]); err != nil {
			log.Fatal(err)
		}
		unstable := sim.Delta(before, c.Stats.Snapshot())[sim.RemoteBytes]
		fmt.Printf("Partition stability (matvec sum job remote bytes): row partitioner %d  hash partitioner %d\n",
			stable, unstable)
		c.Close()
	}

	// Cache: repeated wordcount with the cache on vs off.
	{
		c := newCluster()
		if err := wordcount.Generate(c.FS, "/data/t", 2<<20, 42); err != nil {
			log.Fatal(err)
		}
		c.M3R.Submit(wordcount.NewJob("/data/t", "/out/warm", *nodes, true))
		repOn, err := c.M3R.Submit(wordcount.NewJob("/data/t", "/out/on", *nodes, true))
		if err != nil {
			log.Fatal(err)
		}
		off := wordcount.NewJob("/data/t", "/out/off", *nodes, true)
		off.SetBool(conf.KeyM3RCache, false)
		repOff, err := c.M3R.Submit(off)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Cache (warm rerun on M3R): cache on %ss  cache off %ss\n",
			secs(repOn.Wall), secs(repOff.Wall))
		c.Close()
	}

	// De-duplication: the broadcast-heavy matvec multiply job with the
	// dedup serializer on vs off.
	{
		var bytesOn, bytesOff int64
		for _, dedup := range []bool{true, false} {
			c := newCluster()
			cfg := matrix.Config{
				RowBlocks: 8, ColBlocks: 8, BlockSize: 100, Sparsity: 0.01,
				Partitions: *nodes, Dir: "/mv", Seed: 7,
			}
			if err := matrix.Generate(c.FS, cfg); err != nil {
				log.Fatal(err)
			}
			job := matrix.MultiplyJob(cfg, cfg.GPath(), cfg.VPath(), "/mv/temp_p")
			job.SetBool(conf.KeyM3RDedup, dedup)
			before := c.Stats.Snapshot()
			if _, err := c.M3R.Submit(job); err != nil {
				log.Fatal(err)
			}
			n := sim.Delta(before, c.Stats.Snapshot())[sim.RemoteBytes]
			if dedup {
				bytesOn = n
			} else {
				bytesOff = n
			}
			c.Close()
		}
		fmt.Printf("De-duplication (matvec broadcast remote bytes): dedup on %d KB  dedup off %d KB\n",
			bytesOn>>10, bytesOff>>10)
	}
}
